//! `repro`: regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                       # every experiment at default scale
//! repro table2 --modules 200      # one experiment
//! repro fig8 --runs 50 --modules 75
//! repro fig9 --scale 0.01        # faster, smaller time constants
//! ```

use tsvd_harness::experiments::{
    coverage, ext_adaptive, ext_shared, fig8, fig9, fneg, resources, table1, table2, table3,
    table4, validate, ExpOpts,
};
use tsvd_harness::report::Table;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|table2|table3|table4|fig8|fig9|fneg|resources|ext|validate|coverage|chaos|all> \
         [--modules N] [--runs N] [--seed N] [--scale F] [--threads N]\n\
         \x20      repro analyze [--root DIR] [--allowlist FILE] [--jsonl FILE] \
         [--emit-traps FILE] [--deny-escapes] [--threads N] [--cache-dir DIR] [--no-cache]\n\
         \x20      repro analyze --score STATIC DYNAMIC [--baseline FILE] [--jsonl FILE]\n\
         \x20      repro fix --report SINK [--root DIR] [--static FILE] [--jsonl FILE] \
         [--baseline FILE]\n\
         \x20      repro fleet [--modules N] [--workers N] [--waves N] [--seed N] [--scale F] \
         [--threads N] [--deadline-ms N] [--suite SPEC] [--ledger FILE] [--sink-dir DIR] \
         [--chaos SEED] [--resume LEDGER] [--compare] [--quiet]\n\
         \x20      repro serve --socket PATH --worker N --incarnation N --suite SPEC \
         --sink-dir DIR [--threads N] [--scale F] [--seed N] [--deadline-ms N] [--heartbeat-ms N]"
    );
    std::process::exit(2);
}

/// `repro serve`: the fleet worker entry point. Spawned by the `repro
/// fleet` daemon; connects back over the given Unix socket and runs
/// assigned modules until told to shut down. Exit codes: 0 clean shutdown,
/// 1 lost daemon or bad arguments (the daemon treats both as a death).
fn run_serve_cmd(args: &[String]) -> ! {
    let mut opts = tsvd_fleet::WorkerOptions {
        socket: std::path::PathBuf::new(),
        worker: 0,
        incarnation: 0,
        suite: String::new(),
        sink_dir: std::path::PathBuf::new(),
        threads: 2,
        scale: 0.02,
        seed: 0,
        deadline_ms: 30_000,
        heartbeat_ms: 100,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match flag {
            "--socket" => opts.socket = std::path::PathBuf::from(value),
            "--worker" => opts.worker = value.parse().unwrap_or_else(|_| usage()),
            "--incarnation" => opts.incarnation = value.parse().unwrap_or_else(|_| usage()),
            "--suite" => opts.suite = value.clone(),
            "--sink-dir" => opts.sink_dir = std::path::PathBuf::from(value),
            "--threads" => opts.threads = value.parse().unwrap_or_else(|_| usage()),
            "--scale" => opts.scale = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => opts.deadline_ms = value.parse().unwrap_or_else(|_| usage()),
            "--heartbeat-ms" => opts.heartbeat_ms = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    if opts.socket.as_os_str().is_empty() || opts.suite.is_empty() {
        usage();
    }
    match tsvd_fleet::serve_worker(&opts) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("repro serve: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro fleet`: run (or `--resume`) a supervised multi-process fleet and
/// verify the ledger reconciles exactly against the worker sinks. With
/// `--compare`, also run the identical suite sequentially in-process and
/// print both wall-clock times. Exit codes: 0 ok, 1 fleet failure or
/// reconciliation violation, 2 usage.
fn run_fleet_cmd(args: &[String]) -> ! {
    let mut modules = 200usize;
    let mut workers = 4usize;
    let mut waves = 2usize;
    let mut threads = 2usize;
    let mut scale = 0.02f64;
    let mut seed = 0x534D_414Cu64;
    let mut deadline_ms = 30_000u64;
    let mut suite_arg: Option<String> = None;
    let mut ledger_path: Option<std::path::PathBuf> = None;
    let mut sink_dir: Option<std::path::PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut resume: Option<std::path::PathBuf> = None;
    let mut compare = false;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--compare" => {
                compare = true;
                i += 1;
                continue;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match flag {
            "--modules" => modules = value.parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = value.parse().unwrap_or_else(|_| usage()),
            "--waves" => waves = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value.parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            "--deadline-ms" => deadline_ms = value.parse().unwrap_or_else(|_| usage()),
            "--suite" => suite_arg = Some(value.clone()),
            "--ledger" => ledger_path = Some(std::path::PathBuf::from(value)),
            "--sink-dir" => sink_dir = Some(std::path::PathBuf::from(value)),
            "--chaos" => chaos_seed = Some(value.parse().unwrap_or_else(|_| usage())),
            "--resume" => resume = Some(std::path::PathBuf::from(value)),
            _ => usage(),
        }
        i += 2;
    }

    let spec = match &suite_arg {
        Some(text) => tsvd_fleet::SuiteSpec::parse(text).unwrap_or_else(|e| {
            eprintln!("repro fleet: {e}");
            std::process::exit(2);
        }),
        None => tsvd_fleet::SuiteSpec::Std { modules, seed },
    };
    let run_dir = std::env::temp_dir().join(format!("tsvd_fleet_{}", std::process::id()));
    let ledger = match &resume {
        Some(path) => path.clone(),
        None => ledger_path.unwrap_or_else(|| run_dir.join("ledger.jsonl")),
    };
    let sinks = sink_dir.unwrap_or_else(|| {
        ledger
            .parent()
            .map(|p| p.join("sinks"))
            .unwrap_or_else(|| run_dir.join("sinks"))
    });

    let mut options = tsvd_fleet::FleetOptions::standard(spec.clone(), ledger.clone(), sinks);
    options.workers = workers;
    options.waves = waves;
    options.threads = threads;
    options.scale = scale;
    options.seed = seed;
    options.deadline_ms = deadline_ms;
    options.chaos = chaos_seed.map(tsvd_fleet::ChaosPlan::standard);
    options.resume = resume.is_some();
    options.quiet = quiet;

    let report = match tsvd_fleet::run_fleet(options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro fleet: {e}");
            std::process::exit(1);
        }
    };
    let fleet_secs = report.wall_ns as f64 / 1e9;
    println!(
        "fleet: {} module execution(s) done, {} violation pair(s), {} retr(ies), \
         {} worker death(s), {} quarantined, {fleet_secs:.1}s",
        report.completed,
        report.violations,
        report.retries,
        report.deaths,
        report.quarantined.len(),
    );

    // Reconciliation: the ledger must agree *exactly* with the union of
    // the per-execution worker sinks — chaos or not.
    let events = match tsvd_fleet::Ledger::load(&report.ledger) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("repro fleet: cannot reload ledger: {e}");
            std::process::exit(1);
        }
    };
    let state = tsvd_fleet::replay(&events);
    let recorded_sink_dir = state
        .start
        .as_ref()
        .map(|s| s.sink_dir.clone())
        .unwrap_or_default();
    match tsvd_fleet::verify(&events, &recorded_sink_dir) {
        Ok(summary) => println!(
            "ledger reconciles: {} done event(s), {} quarantined, \
             {} ledger pair(s) == {} sink pair(s)",
            summary.done, summary.quarantined, summary.violations, summary.sink_pairs
        ),
        Err(errors) => {
            for e in &errors {
                eprintln!("repro fleet: invariant violated: {e}");
            }
            std::process::exit(1);
        }
    }
    println!("[ledger: {}]", report.ledger.display());

    if compare {
        let suite = spec.build();
        let run_options = tsvd_fleet::RunOptions {
            config: {
                let mut c = tsvd_core::TsvdConfig::paper().scaled(scale);
                c.seed = seed;
                c
            },
            threads,
            runs: waves,
            shared_trap_file: false,
            module_deadline: Some(std::time::Duration::from_millis(deadline_ms)),
            static_priors: None,
        };
        let outcome =
            tsvd_fleet::runner::run_suite(&suite, tsvd_fleet::DetectorKind::Tsvd, &run_options);
        let seq_secs = outcome.total_wall_ns() as f64 / 1e9;
        println!(
            "sequential baseline: {} unique bug(s), {seq_secs:.1}s wall \
             (fleet {fleet_secs:.1}s on {workers} workers, speedup {:.2}x)",
            outcome.total_bugs(),
            seq_secs / fleet_secs.max(1e-9),
        );

        // Runs-to-first-violation on both sides. Fleet side: each ledger
        // Violation event is a first catch (dedup happens before logging);
        // the wave barrier means an event logged while wave w assignments
        // are in flight belongs to wave w, so attribute by event order.
        let mut wave_now = 0usize;
        let mut fleet_firsts: Vec<usize> = Vec::new();
        for ev in &events {
            match ev {
                tsvd_fleet::LedgerEvent::Assign(a) => wave_now = wave_now.max(a.wave),
                tsvd_fleet::LedgerEvent::Violation(_) => fleet_firsts.push(wave_now + 1),
                _ => {}
            }
        }
        let mean =
            |firsts: &[usize]| firsts.iter().sum::<usize>() as f64 / (firsts.len().max(1)) as f64;
        let seq_firsts: Vec<usize> = outcome.bugs.values().copied().collect();
        println!(
            "runs to first violation: fleet mean {:.2} ({}/{} in wave 1), \
             sequential mean {:.2} ({}/{} in run 1)",
            mean(&fleet_firsts),
            fleet_firsts.iter().filter(|w| **w == 1).count(),
            fleet_firsts.len(),
            mean(&seq_firsts),
            seq_firsts.iter().filter(|r| **r == 1).count(),
            seq_firsts.len(),
        );
    }
    std::process::exit(0);
}

/// `repro analyze`: run the static front end over a source tree.
///
/// Prints the human report; optionally writes a JSONL report and a
/// statically-tagged trap file. Exit codes: 0 clean, 1 un-allowlisted
/// escapes found under `--deny-escapes`, 2 usage or I/O error.
fn run_analyze_cmd(args: &[String]) -> ! {
    if args.first().map(String::as_str) == Some("--score") {
        run_score_cmd(&args[1..]);
    }
    let mut root = std::path::PathBuf::from(".");
    let mut allowlist_path: Option<std::path::PathBuf> = None;
    let mut jsonl_path: Option<std::path::PathBuf> = None;
    let mut traps_path: Option<std::path::PathBuf> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut no_cache = false;
    let mut threads = 1usize;
    let mut deny_escapes = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-escapes" => {
                deny_escapes = true;
                i += 1;
            }
            "--no-cache" => {
                no_cache = true;
                i += 1;
            }
            flag @ ("--root" | "--allowlist" | "--jsonl" | "--emit-traps" | "--cache-dir"
            | "--threads") => {
                let Some(value) = args.get(i + 1) else {
                    usage()
                };
                match flag {
                    "--root" => root = std::path::PathBuf::from(value),
                    "--allowlist" => allowlist_path = Some(std::path::PathBuf::from(value)),
                    "--jsonl" => jsonl_path = Some(std::path::PathBuf::from(value)),
                    "--emit-traps" => traps_path = Some(std::path::PathBuf::from(value)),
                    "--cache-dir" => cache_dir = Some(std::path::PathBuf::from(value)),
                    _ => threads = value.parse().unwrap_or_else(|_| usage()),
                }
                i += 2;
            }
            _ => usage(),
        }
    }

    // Artifact cache defaults to `<root>/.tsvd-analyze-cache`; `--no-cache`
    // disables it, `--cache-dir` relocates it. Thread count and cache state
    // never change the output bytes (see tsvd_analyze::cache).
    let opts = tsvd_analyze::AnalyzeOptions {
        threads,
        cache_dir: if no_cache {
            None
        } else {
            Some(cache_dir.unwrap_or_else(|| root.join(".tsvd-analyze-cache")))
        },
    };
    let mut report = match tsvd_analyze::analyze_workspace_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro analyze: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    // Default allowlist: <root>/analyze-allowlist.toml when present.
    let allowlist = match &allowlist_path {
        Some(p) => match tsvd_analyze::Allowlist::load(p) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("repro analyze: cannot read allowlist {}: {e}", p.display());
                std::process::exit(2);
            }
        },
        None => {
            let default = root.join("analyze-allowlist.toml");
            if default.is_file() {
                tsvd_analyze::Allowlist::load(&default).unwrap_or_default()
            } else {
                tsvd_analyze::Allowlist::empty()
            }
        }
    };
    report.apply_allowlist(&allowlist);

    print!("{}", report.render_human());
    if let Some(p) = &jsonl_path {
        if let Err(e) = std::fs::write(p, report.to_jsonl()) {
            eprintln!("repro analyze: cannot write {}: {e}", p.display());
            std::process::exit(2);
        }
        println!("[jsonl report: {}]", p.display());
    }
    if let Some(p) = &traps_path {
        if let Err(e) = report.to_trap_file().save(p) {
            eprintln!("repro analyze: cannot write {}: {e}", p.display());
            std::process::exit(2);
        }
        println!(
            "[static trap file: {} ({} pairs)]",
            p.display(),
            report.pairs.len()
        );
    }
    let blocking = report.unallowlisted_escapes().len();
    if deny_escapes && blocking > 0 {
        eprintln!(
            "repro analyze: {blocking} raw-collection escape(s) not covered by the allowlist"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `repro fix --report SINK`: static fix inference over confirmed TSVs.
///
/// Joins each dynamic violation from a durable sink (a single JSONL file,
/// or a fleet sink directory of `w*_m*_a*.jsonl` files which is merged and
/// deduplicated first) against the static site database, classifies the
/// pair into a fix pattern, and prints ranked span-anchored suggestions
/// rendered as unified diffs. Suggestions are never applied. The static
/// side comes from `--static FILE` (an analyzer JSONL report) or from
/// scanning `--root DIR` (default `.`). With `--baseline FILE` the emitted
/// suggestions must match the recorded ones exactly. Exit codes: 0 ok,
/// 1 baseline mismatch, 2 usage or I/O error.
fn run_fix_cmd(args: &[String]) -> ! {
    let mut report_path: Option<std::path::PathBuf> = None;
    let mut root = std::path::PathBuf::from(".");
    let mut static_path: Option<std::path::PathBuf> = None;
    let mut jsonl_path: Option<std::path::PathBuf> = None;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        let path = std::path::PathBuf::from(value);
        match flag {
            "--report" => report_path = Some(path),
            "--root" => root = path,
            "--static" => static_path = Some(path),
            "--jsonl" => jsonl_path = Some(path),
            "--baseline" => baseline_path = Some(path),
            _ => usage(),
        }
        i += 2;
    }
    let Some(report_path) = report_path else {
        usage()
    };

    let violations = if report_path.is_dir() {
        match tsvd_fleet::merge_sink_dir(&report_path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "repro fix: cannot merge sink dir {}: {e}",
                    report_path.display()
                );
                std::process::exit(2);
            }
        }
    } else {
        match tsvd_core::DurableSink::load(&report_path) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("repro fix: cannot read sink {}: {e}", report_path.display());
                std::process::exit(2);
            }
        }
    };

    let static_report = match &static_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => tsvd_analyze::AnalysisReport::from_jsonl(&text),
            Err(e) => {
                eprintln!("repro fix: cannot read static report {}: {e}", p.display());
                std::process::exit(2);
            }
        },
        None => match tsvd_analyze::analyze_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("repro fix: cannot scan {}: {e}", root.display());
                std::process::exit(2);
            }
        },
    };

    let suggestions = tsvd_analyze::repair::infer(&static_report, &violations, &root);
    println!(
        "fix suggestions: {} (from {} violation record(s))",
        suggestions.len(),
        violations.len()
    );
    for (rank, s) in suggestions.iter().enumerate() {
        println!(
            "\n[{}] {} (confidence {:.4}) {}:{}",
            rank + 1,
            s.pattern,
            s.confidence,
            s.file,
            s.line
        );
        println!("    {}", s.title);
        println!("    {}", s.rationale);
        if s.diff.is_empty() {
            println!("    (no diff rendered)");
        } else {
            for line in s.diff.lines() {
                println!("    {line}");
            }
        }
    }

    if let Some(p) = &jsonl_path {
        if let Err(e) = tsvd_core::suggest::save(&suggestions, p) {
            eprintln!("repro fix: cannot write {}: {e}", p.display());
            std::process::exit(2);
        }
        println!("\n[suggestions: {}]", p.display());
    }

    let mut failed = false;
    if let Some(p) = &baseline_path {
        let expected = match tsvd_core::suggest::load(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("repro fix: cannot read baseline {}: {e}", p.display());
                std::process::exit(2);
            }
        };
        let render = |r: &tsvd_core::SuggestionRecord| serde_json::to_string(r).unwrap_or_default();
        let got: Vec<String> = suggestions.iter().map(render).collect();
        let want: Vec<String> = expected.iter().map(render).collect();
        if got == want {
            println!(
                "\n[baseline ok: {} suggestion(s) match exactly]",
                want.len()
            );
        } else {
            failed = true;
            eprintln!(
                "repro fix: suggestions diverge from baseline {} ({} emitted vs {} recorded)",
                p.display(),
                got.len(),
                want.len()
            );
            for idx in 0..got.len().max(want.len()) {
                let g = got.get(idx).map(String::as_str).unwrap_or("<missing>");
                let w = want.get(idx).map(String::as_str).unwrap_or("<missing>");
                if g != w {
                    eprintln!("  first mismatch at [{idx}]:\n    emitted:  {g}\n    recorded: {w}");
                    break;
                }
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// `repro analyze --score STATIC DYNAMIC`: the precision scoreboard.
///
/// Joins static pair candidates (an analyzer JSONL report or a trap file)
/// against dynamic outcomes (a run-report JSONL or a trap file) and prints
/// per-rule precision plus overall precision/recall. With `--baseline FILE`
/// the computed numbers must not regress below the recorded floor. Exit
/// codes: 0 ok, 1 baseline regression or true-candidate loss, 2 usage or
/// I/O error.
fn run_score_cmd(args: &[String]) -> ! {
    let mut positional: Vec<&String> = Vec::new();
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut jsonl_path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            flag @ ("--baseline" | "--jsonl") => {
                let Some(value) = args.get(i + 1) else {
                    usage()
                };
                let path = std::path::PathBuf::from(value);
                if flag == "--baseline" {
                    baseline_path = Some(path);
                } else {
                    jsonl_path = Some(path);
                }
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let [static_path, dynamic_path] = positional.as_slice() else {
        usage()
    };
    let (kept, pruned) =
        match tsvd_analyze::score::load_candidates(std::path::Path::new(static_path.as_str())) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("repro analyze --score: cannot read candidates {static_path}: {e}");
                std::process::exit(2);
            }
        };
    let outcomes =
        match tsvd_analyze::score::load_outcomes(std::path::Path::new(dynamic_path.as_str())) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("repro analyze --score: cannot read outcomes {dynamic_path}: {e}");
                std::process::exit(2);
            }
        };
    let report = tsvd_analyze::score::score(&kept, &pruned, &outcomes);
    print!("{}", report.render_human());
    if let Some(p) = &jsonl_path {
        let line = serde_json::to_string(&report.to_json_value()).unwrap_or_default();
        if let Err(e) = std::fs::write(p, line + "\n") {
            eprintln!("repro analyze --score: cannot write {}: {e}", p.display());
            std::process::exit(2);
        }
        println!("[score report: {}]", p.display());
    }
    let mut failed = false;
    if report.pruned_confirmed > 0 {
        eprintln!(
            "repro analyze --score: {} dynamically confirmed pair(s) were pruned statically",
            report.pruned_confirmed
        );
        failed = true;
    }
    if let Some(p) = &baseline_path {
        let baseline = match tsvd_analyze::score::Baseline::load(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "repro analyze --score: cannot read baseline {}: {e}",
                    p.display()
                );
                std::process::exit(2);
            }
        };
        if let Err(msg) = report.check_baseline(&baseline) {
            eprintln!("repro analyze --score: {msg}");
            failed = true;
        } else {
            println!(
                "[baseline ok: precision >= {:.4}, recall >= {:.4}]",
                baseline.precision, baseline.recall
            );
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Runs the chaos storm (`--runs` iterations, default 10) and exits
/// non-zero if any robustness invariant breaks.
fn run_chaos_cmd(opts: &ExpOpts) {
    let mut options = tsvd_harness::ChaosOptions::standard();
    options.threads = opts.threads;
    options.seed = options.seed.wrapping_add(opts.seed);
    if opts.runs > 2 {
        options.iterations = opts.runs;
    }
    let sink_path =
        std::env::temp_dir().join(format!("tsvd_chaos_sink_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&sink_path);
    options.config.durable_sink = Some(sink_path.clone());
    match tsvd_harness::run_chaos(&options) {
        Ok(report) => {
            println!(
                "chaos ok: {} tasks ({} panicked, {} handles dropped), \
                 {} violations, {} delays, {} degraded iteration(s), {} durable record(s)",
                report.tasks_spawned,
                report.tasks_panicked,
                report.handles_dropped,
                report.violations,
                report.delays,
                report.degraded_iterations,
                report.durable_records,
            );
            let _ = std::fs::remove_file(&sink_path);
        }
        Err(failure) => {
            eprintln!("{failure}");
            // Keep the durable sink on failure — it is the crash evidence —
            // and say where it is, so the reproducing run is debuggable.
            eprintln!("[durable sink kept: {}]", sink_path.display());
            std::process::exit(1);
        }
    }
}

fn parse_opts(args: &[String]) -> ExpOpts {
    let mut opts = ExpOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match flag {
            "--modules" => opts.modules = value.parse().unwrap_or_else(|_| usage()),
            "--runs" => opts.runs = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--scale" => opts.scale = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    opts
}

fn emit(name: &str, tables: Vec<Table>) {
    for (i, t) in tables.iter().enumerate() {
        t.print();
        let file = if tables.len() == 1 {
            name.to_string()
        } else {
            format!("{name}_{}", (b'a' + i as u8) as char)
        };
        match t.save_csv(&file) {
            Ok(path) => println!("[saved {}]\n", path.display()),
            Err(e) => eprintln!("[csv save failed: {e}]"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else { usage() };
    if which == "analyze" {
        run_analyze_cmd(&args[1..]);
    }
    if which == "fix" {
        run_fix_cmd(&args[1..]);
    }
    if which == "serve" {
        run_serve_cmd(&args[1..]);
    }
    if which == "fleet" {
        run_fleet_cmd(&args[1..]);
    }
    let opts = parse_opts(&args[1..]);

    let start = std::time::Instant::now();
    match which.as_str() {
        "table1" => emit(
            "table1",
            table1::run(&opts.with_modules(opts.modules.max(400))),
        ),
        "table2" => emit("table2", table2::run(&opts)),
        "table3" => emit("table3", table3::run(&opts)),
        "table4" => emit("table4", table4::run(&opts)),
        "fig8" => {
            let mut o = opts.with_modules(opts.modules.min(75));
            if o.runs < 10 {
                o.runs = 50;
            }
            emit("fig8", fig8::run(&o));
        }
        "fig9" => emit("fig9", fig9::run(&opts.with_modules(opts.modules.min(100)))),
        "fneg" => emit("fneg", fneg::run(&opts.with_modules(opts.modules.min(100)))),
        "resources" => emit("resources", resources::run(&opts)),
        "ext" => {
            emit("ext_adaptive", ext_adaptive::run(&opts));
            emit(
                "ext_shared",
                ext_shared::run(&opts.with_modules(opts.modules.min(100))),
            );
        }
        "validate" => emit(
            "validate",
            validate::run(&opts.with_modules(opts.modules.min(100))),
        ),
        "coverage" => emit("coverage", coverage::run(&opts)),
        "chaos" => run_chaos_cmd(&opts),
        "all" => {
            emit("table2", table2::run(&opts));
            emit("table3", table3::run(&opts));
            emit("table4", table4::run(&opts));
            emit(
                "table1",
                table1::run(&opts.with_modules(opts.modules.max(400))),
            );
            let mut f8 = opts.with_modules(opts.modules.min(75));
            if f8.runs < 10 {
                f8.runs = 50;
            }
            emit("fig8", fig8::run(&f8));
            emit("fig9", fig9::run(&opts.with_modules(opts.modules.min(100))));
            emit("fneg", fneg::run(&opts.with_modules(opts.modules.min(100))));
            emit("resources", resources::run(&opts));
            emit("ext_adaptive", ext_adaptive::run(&opts));
            emit(
                "ext_shared",
                ext_shared::run(&opts.with_modules(opts.modules.min(100))),
            );
            emit(
                "validate",
                validate::run(&opts.with_modules(opts.modules.min(100))),
            );
            emit("coverage", coverage::run(&opts));
        }
        _ => usage(),
    }
    eprintln!("[repro finished in {:.1}s]", start.elapsed().as_secs_f64());
}
