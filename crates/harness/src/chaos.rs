//! Chaos mode: hostile workloads proving the runtime can't be crashed or
//! hung.
//!
//! The detector's cardinal promise is *do no harm*: whatever an
//! instrumented test does — panic mid-task, leak join handles, stall a
//! worker inside a trap — the runtime must terminate, keep its trap table
//! and counters consistent, and lose no caught violation. Chaos mode turns
//! that promise into an executable check. Each iteration spawns a burst of
//! tasks hammering shared instrumented collections while a seeded RNG
//! injects three failure modes:
//!
//! 1. **task panics** — a fraction of tasks panic partway through their
//!    accesses, unwinding through instrumented wrapper calls (and possibly
//!    through a trap in progress);
//! 2. **dropped handles** — a fraction of join handles are dropped without
//!    joining, so task completion races runtime teardown;
//! 3. **mid-trap stalls** — a fraction of tasks sleep while other threads
//!    are delayed, pushing the pool toward the all-blocked starvation the
//!    watchdog exists to break.
//!
//! After the storm, [`run_chaos`] verifies the invariants and — when a
//! durable sink is configured — reconciles it against the in-memory
//! reports: every surviving in-memory violation must already be on disk.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use tsvd_collections::Dictionary;
use tsvd_core::rng::SplitMix64;
use tsvd_core::sink::{normalize_pair, DurableSink};
use tsvd_core::{Runtime, TsvdConfig};
use tsvd_workloads::module::ModuleCtx;

/// Tuning for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Detector configuration (the durable sink rides in here).
    pub config: TsvdConfig,
    /// Pool workers.
    pub threads: usize,
    /// Tasks spawned per iteration.
    pub tasks: usize,
    /// Iterations (each gets a fresh runtime and pool).
    pub iterations: usize,
    /// RNG seed for the failure injection.
    pub seed: u64,
    /// Probability (×1000) that a task panics mid-access.
    pub panic_per_mille: u32,
    /// Probability (×1000) that a handle is dropped without joining.
    pub drop_per_mille: u32,
    /// Probability (×1000) that a task stalls mid-burst.
    pub stall_per_mille: u32,
}

impl ChaosOptions {
    /// The standard storm: small but hostile, CI-sized.
    pub fn standard() -> ChaosOptions {
        ChaosOptions {
            config: TsvdConfig::paper().scaled(0.02),
            threads: 2,
            tasks: 24,
            iterations: 10,
            seed: 0xC4A0_5EED,
            panic_per_mille: 200,
            drop_per_mille: 300,
            stall_per_mille: 150,
        }
    }
}

/// What one chaos run did and found.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Tasks spawned across all iterations.
    pub tasks_spawned: usize,
    /// Tasks that were made to panic.
    pub tasks_panicked: usize,
    /// Join handles dropped without joining.
    pub handles_dropped: usize,
    /// Violations observed in-memory (all iterations, repeats included).
    pub violations: usize,
    /// Delays injected across all iterations.
    pub delays: u64,
    /// Iterations whose runtime ended degraded (watchdog stepped in).
    pub degraded_iterations: usize,
    /// Records found in the durable sink afterwards (0 when unconfigured).
    pub durable_records: usize,
}

/// Invariant violation found by a chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosFailure(pub String);

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos invariant violated: {}", self.0)
    }
}

/// Runs the chaos storm and checks the invariants. `Ok` carries the
/// activity report; `Err` names the first broken invariant.
pub fn run_chaos(options: &ChaosOptions) -> Result<ChaosReport, ChaosFailure> {
    let mut rng = SplitMix64::new(options.seed);
    let mut report = ChaosReport::default();

    for iteration in 0..options.iterations {
        let rt = Runtime::tsvd(options.config.clone());
        chaos_iteration(&rt, options, &mut rng, &mut report);

        // Invariant 1: every trap is cleared once the storm subsides —
        // panicking tasks and cancelled sleepers included.
        let live = rt.live_traps();
        if live != 0 {
            return Err(ChaosFailure(format!(
                "iteration {iteration}: {live} live trap(s) after all tasks ended"
            )));
        }

        // Invariant 2: budget bookkeeping stayed consistent — time actually
        // slept never exceeds the per-run budget by more than one delay
        // quantum (a sleeper admitted just under the cap may finish over it).
        let stats = rt.stats();
        let budget = options.config.max_delay_per_run_ns;
        if budget != u64::MAX
            && stats.delay_total_ns() > budget.saturating_add(options.config.delay_ns)
        {
            return Err(ChaosFailure(format!(
                "iteration {iteration}: slept {}ns, budget {}ns",
                stats.delay_total_ns(),
                budget
            )));
        }

        report.violations += rt.reports().total_occurrences();
        report.delays += stats.delays_injected();
        if rt.is_passive() {
            report.degraded_iterations += 1;
        }

        rt.flush_durable_sink();
    }

    // Invariant 3: the durable sink, when configured, holds every pair the
    // in-memory reports ever saw. (Chaos keeps one sink across iterations,
    // so reconciliation happens per iteration inside chaos_iteration; the
    // final count lands here.)
    if let Some(path) = &options.config.durable_sink {
        report.durable_records = DurableSink::load(path)
            .map_err(|e| ChaosFailure(format!("durable sink unreadable: {e}")))?
            .len();
        if report.durable_records < report.violations {
            return Err(ChaosFailure(format!(
                "durable sink has {} records but {} violations were reported",
                report.durable_records, report.violations
            )));
        }
    }

    Ok(report)
}

/// One iteration: a task storm against two shared dictionaries.
fn chaos_iteration(
    rt: &Arc<Runtime>,
    options: &ChaosOptions,
    rng: &mut SplitMix64,
    report: &mut ChaosReport,
) {
    let ctx = ModuleCtx::new(rt.clone(), options.threads);
    let hot: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
    let cold: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
    let beat = ctx.beat;

    let mut handles = Vec::new();
    for task_idx in 0..options.tasks {
        let hot = hot.clone();
        let cold = cold.clone();
        let panic_here = rng.per_mille(options.panic_per_mille);
        let stall_here = rng.per_mille(options.stall_per_mille);
        let salt = rng.next();
        report.tasks_spawned += 1;
        if panic_here {
            report.tasks_panicked += 1;
        }
        let handle = ctx.pool.spawn(move || {
            for step in 0..8u64 {
                let key = (salt ^ step) % 4; // Few keys: heavy contention.
                hot.set(key, step);
                let _ = hot.get(&key);
                if step == 3 {
                    if stall_here {
                        // Stall mid-burst while siblings may be delayed:
                        // the all-blocked shape the watchdog must survive.
                        std::thread::sleep(beat * 2);
                    }
                    if panic_here {
                        // Unwind straight through the instrumented wrappers.
                        panic!("chaos: task {task_idx} scripted panic");
                    }
                }
                cold.set(salt % 64 + step * 64, step);
            }
        });
        handles.push(handle);
    }

    for handle in handles {
        if rng.per_mille(options.drop_per_mille) {
            // Abandon the task: completion now races pool/runtime teardown.
            report.handles_dropped += 1;
            drop(handle);
        } else {
            // Panics propagate on join; contain them — chaos must observe,
            // not die.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.join()));
        }
    }

    // Dropping the ctx (pool) ends the iteration; dropped-handle tasks may
    // still be running on workers. Wait for the trap table to drain rather
    // than assuming: a bounded grace window keeps the check honest.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while rt.live_traps() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Verifies a durable sink against a runtime's in-memory reports: every
/// in-memory violation pair must appear in the sink file (the write-ahead
/// guarantee). Returns the number of durable records.
pub fn reconcile_sink(rt: &Runtime, path: &Path) -> Result<usize, String> {
    let records = DurableSink::load(path).map_err(|e| format!("load {}: {e}", path.display()))?;
    let on_disk: std::collections::HashSet<(String, String)> =
        records.iter().map(|r| r.pair_key()).collect();
    for v in rt.reports().violations() {
        let key = normalize_pair(&v.trapped.site.to_string(), &v.hitter.site.to_string());
        if !on_disk.contains(&key) {
            return Err(format!(
                "violation {} / {} reported in memory but missing from the durable sink",
                key.0, key.1
            ));
        }
    }
    Ok(records.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_standard_terminates_with_invariants_intact() {
        let mut options = ChaosOptions::standard();
        options.iterations = 3;
        let report = run_chaos(&options).expect("invariants hold");
        assert_eq!(report.tasks_spawned, 3 * options.tasks);
        assert!(report.tasks_panicked > 0, "the storm must include panics");
    }

    #[test]
    fn chaos_with_durable_sink_reconciles() {
        let dir = std::env::temp_dir().join(format!("tsvd_chaos_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("violations.jsonl");
        let mut options = ChaosOptions::standard();
        options.iterations = 4;
        options.config.durable_sink = Some(path.clone());
        let report = run_chaos(&options).expect("invariants hold");
        if report.violations > 0 {
            assert!(report.durable_records >= report.violations);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn storms_are_deterministic_per_seed() {
        // The shared SplitMix64 (tsvd_core::rng) drives failure scheduling;
        // equal seeds must produce identical storms end to end.
        let mut options = ChaosOptions::standard();
        options.iterations = 2;
        options.tasks = 40;
        let a = run_chaos(&options).expect("storm a");
        let b = run_chaos(&options).expect("storm b");
        assert_eq!(a.tasks_panicked, b.tasks_panicked);
        assert_eq!(a.handles_dropped, b.handles_dropped);
    }
}
