//! Table 3: removing one TSVD technique at a time.
//!
//! Paper's rows: full TSVD, no HB-inference, no windowing in near-miss
//! tracking, no concurrent-phase detection. Expected shape: disabling HB
//! inference or windowing loses bugs and inflates overhead (windowing most
//! of all); disabling phase detection keeps bug counts but raises overhead.

use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::{overhead, Table};
use crate::runner::{baseline_wall_ns, overhead_pct, run_suite, DetectorKind};

/// Runs the Table 3 ablation.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let mut options = opts.run_options();
    options.runs = 2;
    let base_ns = baseline_wall_ns(&suite, &options);

    type Tweak = fn(&mut tsvd_core::TsvdConfig);
    let variants: [(&str, Tweak); 4] = [
        ("TSVD", |_| {}),
        ("No HB-inference", |c| c.enable_hb_inference = false),
        ("No windowing in near-miss", |c| c.enable_windowing = false),
        ("No concurrent phase detection", |c| {
            c.enable_phase_detection = false
        }),
    ];

    let mut table = Table::new(
        format!(
            "Table 3: removing one technique at a time ({} modules)",
            suite.len()
        ),
        &["variant", "bugs", "run1", "run2", "overhead", "delays"],
    );
    for (name, tweak) in variants {
        let mut o = options.clone();
        tweak(&mut o.config);
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &o);
        table.row(vec![
            name.to_string(),
            outcome.total_bugs().to_string(),
            outcome.bugs_in_run(1).to_string(),
            outcome.bugs_in_run(2).to_string(),
            overhead(overhead_pct(&outcome, base_ns)),
            outcome.total_delays().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_produces_four_rows() {
        let opts = ExpOpts {
            modules: 25,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables[0].len(), 4);
    }
}
