//! §5.2 bug validation: every reported bug re-confirms under focused
//! reproduction.
//!
//! The paper's product teams confirmed all 80 reported bugs as real. The
//! mechanical analog: take every bug TSVD found on the suite, re-run its
//! module under the [`Focused`](tsvd_core::strategy::Focused) strategy
//! (single pair, always-delay, lengthened delays), and count how many
//! re-trigger. Reports are true by construction — validation measures
//! *reproducibility*, the property that made the paper's reports
//! actionable.

use std::collections::HashMap;

use tsvd_core::Runtime;
use tsvd_workloads::module::ModuleCtx;
use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::{pct, Table};
use crate::runner::{run_suite, DetectorKind};

/// Runs the validation experiment.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let by_name: HashMap<&str, &tsvd_workloads::Module> =
        suite.iter().map(|m| (m.name(), m)).collect();
    let mut options = opts.run_options();
    options.runs = 2;

    // Discovery pass.
    let outcome = run_suite(&suite, DetectorKind::Tsvd, &options);

    // Focused replay: up to 3 attempts per bug, 4× delays.
    let mut confirmed = 0usize;
    let mut attempts_hist = [0usize; 4]; // Index = attempts needed; [0] unused.
    for (module_name, pair) in outcome.bugs.keys() {
        let module = by_name[module_name.as_str()];
        for (attempt, slot) in attempts_hist.iter_mut().enumerate().skip(1) {
            let _ = attempt;
            let rt = Runtime::focused(options.config.clone(), *pair, 4);
            let ctx = ModuleCtx::new(rt.clone(), options.threads);
            module.run(&ctx);
            if rt.reports().bug_pairs().contains(pair) {
                confirmed += 1;
                *slot += 1;
                break;
            }
        }
    }

    let total = outcome.bugs.len();
    let mut t = Table::new(
        format!(
            "§5.2 bug validation by focused replay ({} modules)",
            suite.len()
        ),
        &["metric", "value"],
    );
    t.row(vec![
        "bugs reported by TSVD (2 runs)".into(),
        total.to_string(),
    ]);
    t.row(vec![
        "confirmed by focused replay (≤3 tries)".into(),
        confirmed.to_string(),
    ]);
    t.row(vec![
        "confirmation rate".into(),
        if total == 0 {
            "n/a".into()
        } else {
            pct(confirmed as f64 / total as f64)
        },
    ]);
    t.row(vec![
        "  confirmed on 1st replay".into(),
        attempts_hist[1].to_string(),
    ]);
    t.row(vec![
        "  confirmed on 2nd replay".into(),
        attempts_hist[2].to_string(),
    ]);
    t.row(vec![
        "  confirmed on 3rd replay".into(),
        attempts_hist[3].to_string(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_runs_on_tiny_suite() {
        let opts = ExpOpts {
            modules: 25,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables[0].len(), 6);
    }
}
