//! §5.5: CPU/memory consumption of TSVD.
//!
//! The paper reports a 17 % median increase in maximum memory (near-miss
//! pairs and per-object access history) and an 82 % median increase in
//! average CPU utilization (mostly the forced-async instrumentation using
//! more cores). This report gathers the analogous counters: strategy
//! tracking bytes, injected delay time, `OnCall` traffic, and
//! synchronization-event traffic per detector.

use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::Table;
use crate::runner::{run_suite, DetectorKind};

/// Runs the resource-consumption report.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let mut options = opts.run_options();
    options.runs = 1;

    let mut t = Table::new(
        format!("§5.5 resource consumption ({} modules, 1 run)", suite.len()),
        &[
            "detector",
            "peak tracking bytes",
            "delays",
            "delay total (ms)",
            "on_calls",
            "wall (ms)",
        ],
    );
    for kind in [
        DetectorKind::Noop,
        DetectorKind::DynamicRandom,
        DetectorKind::DataCollider,
        DetectorKind::TsvdHb,
        DetectorKind::Tsvd,
    ] {
        let outcome = run_suite(&suite, kind, &options);
        let delays = outcome.total_delays();
        let wall_ms = outcome.total_wall_ns() / 1_000_000;
        let delay_ms = outcome.total_delay_ns() / 1_000_000;
        t.row(vec![
            outcome.detector.to_string(),
            outcome.peak_strategy_bytes.to_string(),
            delays.to_string(),
            delay_ms.to_string(),
            outcome.runs[0].on_calls.to_string(),
            wall_ms.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resources_has_five_rows() {
        let opts = ExpOpts {
            modules: 25,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables[0].len(), 5);
    }
}
