//! Extension experiment (beyond the paper): adaptive delay lengthening.
//!
//! The paper's §5.3 false-negative category 3 — "the injected delay was not
//! long enough to trigger the bug" — costs TSVD bugs whose racing partner
//! arrives on a period longer than the delay. The extension doubles a
//! location's delay after each fruitless injection (capped), resetting on a
//! catch. This experiment measures stock TSVD vs. TSVD+adaptive on a corpus
//! of `slow-partner` modules where the partner period is ~2.5× the delay.

use tsvd_workloads::scenarios::hard::slow_partner;
use tsvd_workloads::Module;

use crate::experiments::ExpOpts;
use crate::report::Table;
use crate::runner::{run_suite, DetectorKind, RunOptions};

fn corpus(n: usize, seed: u64) -> Vec<Module> {
    (0..n)
        .map(|i| slow_partner(seed ^ i as u64, 24))
        .enumerate()
        .map(|(i, m)| {
            Module::new(
                format!("slow{i:02}:{}", m.name()),
                m.tests(),
                m.expectation(),
                m.uses_async(),
                m.structure(),
                move |ctx| m.run(ctx),
            )
        })
        .collect()
}

/// Runs the adaptive-delay comparison.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let modules = corpus(opts.modules.clamp(8, 24), opts.seed);
    let mut table = Table::new(
        format!(
            "Extension: adaptive delay lengthening ({} slow-partner modules, 2 runs)",
            modules.len()
        ),
        &[
            "variant",
            "bugs",
            "run1",
            "run2",
            "delays",
            "delay total (ms)",
        ],
    );
    for (name, adaptive) in [("TSVD (stock)", false), ("TSVD + adaptive delay", true)] {
        let mut options: RunOptions = opts.run_options();
        options.runs = 2;
        options.config.adaptive_delay = adaptive;
        let outcome = run_suite(&modules, DetectorKind::Tsvd, &options);
        let delay_ms = outcome.total_delay_ns() / 1_000_000;
        table.row(vec![
            name.to_string(),
            outcome.total_bugs().to_string(),
            outcome.bugs_in_run(1).to_string(),
            outcome.bugs_in_run(2).to_string(),
            outcome.total_delays().to_string(),
            delay_ms.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_adaptive_produces_two_rows() {
        let opts = ExpOpts {
            modules: 8,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables[0].len(), 2);
    }
}
