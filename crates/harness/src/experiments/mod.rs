//! One module per paper table/figure. Each exposes
//! `run(&ExpOpts) -> Vec<Table>`; the `repro` binary prints every table and
//! saves it as CSV under `target/experiments/`.

pub mod coverage;
pub mod ext_adaptive;
pub mod ext_shared;
pub mod fig8;
pub mod fig9;
pub mod fneg;
pub mod resources;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod validate;

use tsvd_core::TsvdConfig;

use crate::runner::RunOptions;

/// Shared experiment options (overridable from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Modules in the generated suite (experiments scale this down or up).
    pub modules: usize,
    /// Test runs with trap-file carry-over.
    pub runs: usize,
    /// Suite seed.
    pub seed: u64,
    /// Time-scale factor applied to the paper's 100 ms constants.
    pub scale: f64,
    /// Pool workers per module.
    pub threads: usize,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            modules: 200,
            runs: 2,
            seed: 0x534D_414C,
            scale: 0.02,
            threads: 2,
        }
    }
}

impl ExpOpts {
    /// The scaled detector configuration.
    pub fn config(&self) -> TsvdConfig {
        TsvdConfig::paper().scaled(self.scale)
    }

    /// Runner options derived from these experiment options.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            config: self.config(),
            threads: self.threads,
            runs: self.runs,
            shared_trap_file: false,
            module_deadline: Some(std::time::Duration::from_secs(30)),
            static_priors: None,
        }
    }

    /// A copy with a different module count.
    pub fn with_modules(&self, modules: usize) -> ExpOpts {
        ExpOpts {
            modules,
            ..self.clone()
        }
    }
}
