//! Figure 9: sensitivity analysis of every TSVD parameter.
//!
//! Eight panels, each sweeping one knob of [`TsvdConfig`] while the rest
//! stay at the paper's defaults, reporting bugs found (2 runs) and
//! overhead. Expected shapes (paper §5.4):
//!
//! - (a) tries: small variance across repeated tries;
//! - (b) `N_nm`: tiny history misses bugs, large history adds overhead;
//! - (c) `T_nm`: 1 ms window misses bugs; ≥100 ms plateaus;
//! - (d) `δ_hb = 0` infers bogus HB edges and loses bugs;
//! - (e) huge `k_hb` prunes everything and kills the bug count;
//! - (f) tiny phase buffers miss concurrency; huge ones inflate overhead;
//! - (g) decay factor 0 explodes overhead;
//! - (h) longer delays catch slightly more bugs at more overhead.

use tsvd_core::clock::ms_to_ns;
use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::{overhead, Table};
use crate::runner::{baseline_wall_ns, overhead_pct, run_suite, DetectorKind, RunOptions};

fn sweep(
    title: &str,
    column: &str,
    suite: &[tsvd_workloads::Module],
    base_ns: u64,
    options: &RunOptions,
    settings: Vec<Setting>,
) -> Table {
    let mut table = Table::new(title, &[column, "bugs", "overhead", "delays"]);
    for (label, tweak) in settings {
        let mut o = options.clone();
        tweak(&mut o.config);
        let outcome = run_suite(suite, DetectorKind::Tsvd, &o);
        table.row(vec![
            label,
            outcome.total_bugs().to_string(),
            overhead(overhead_pct(&outcome, base_ns)),
            outcome.total_delays().to_string(),
        ]);
    }
    table
}

type Setting = (String, Box<dyn Fn(&mut tsvd_core::TsvdConfig)>);

fn settings<T: Copy + std::fmt::Display + 'static>(
    values: &[T],
    apply: impl Fn(&mut tsvd_core::TsvdConfig, T) + Copy + 'static,
) -> Vec<Setting> {
    values
        .iter()
        .map(|&v| {
            let f: Box<dyn Fn(&mut tsvd_core::TsvdConfig)> = Box::new(move |c| apply(c, v));
            (v.to_string(), f)
        })
        .collect()
}

/// Runs all eight Figure 9 panels.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules.min(100),
        seed: opts.seed,
    });
    let mut options = opts.run_options();
    options.runs = 2;
    let base_ns = baseline_wall_ns(&suite, &options);
    let scale = opts.scale;
    let n = suite.len();

    let mut tables = Vec::new();

    // (a) Tries: repeated identical configurations; seed varies per try.
    {
        let mut t = Table::new(
            format!("Figure 9(a): variance across tries ({n} modules)"),
            &["try", "bugs", "overhead", "delays"],
        );
        for try_idx in 0..8u64 {
            let mut o = options.clone();
            o.config.seed = o.config.seed.wrapping_add(try_idx * 77);
            let outcome = run_suite(&suite, DetectorKind::Tsvd, &o);
            t.row(vec![
                (try_idx + 1).to_string(),
                outcome.total_bugs().to_string(),
                overhead(overhead_pct(&outcome, base_ns)),
                outcome.total_delays().to_string(),
            ]);
        }
        tables.push(t);
    }

    // (b) Per-object history N_nm.
    tables.push(sweep(
        &format!("Figure 9(b): near-miss object history N_nm ({n} modules)"),
        "N_nm",
        &suite,
        base_ns,
        &options,
        settings(&[1usize, 2, 5, 10, 20], |c, v| c.near_miss_history = v),
    ));

    // (c) Near-miss window T_nm (paper milliseconds, scaled like the rest).
    {
        let s = move |c: &mut tsvd_core::TsvdConfig, ms: u64| {
            c.near_miss_window_ns = ((ms_to_ns(ms) as f64) * scale).round().max(1.0) as u64;
        };
        tables.push(sweep(
            &format!("Figure 9(c): near-miss window T_nm, paper-ms ({n} modules)"),
            "T_nm(ms)",
            &suite,
            base_ns,
            &options,
            settings(&[1u64, 10, 100, 1000], s),
        ));
    }

    // (d) HB blocking threshold δ_hb.
    tables.push(sweep(
        &format!("Figure 9(d): HB blocking threshold δ_hb ({n} modules)"),
        "δ_hb",
        &suite,
        base_ns,
        &options,
        settings(&[0.0f64, 0.1, 0.3, 0.5, 0.8], |c, v| {
            c.hb_blocking_threshold = v
        }),
    ));

    // (e) HB inference window k_hb.
    tables.push(sweep(
        &format!("Figure 9(e): HB inference window k_hb ({n} modules)"),
        "k_hb",
        &suite,
        base_ns,
        &options,
        settings(&[0usize, 2, 5, 10, 50], |c, v| c.hb_inference_window = v),
    ));

    // (f) Concurrent-phase buffer size.
    tables.push(sweep(
        &format!("Figure 9(f): phase buffer size ({n} modules)"),
        "buffer",
        &suite,
        base_ns,
        &options,
        settings(&[2usize, 4, 16, 64, 256], |c, v| c.phase_buffer = v),
    ));

    // (g) Decay factor.
    tables.push(sweep(
        &format!("Figure 9(g): decay factor ({n} modules)"),
        "decay",
        &suite,
        base_ns,
        &options,
        settings(&[0.0f64, 0.1, 0.3, 0.5, 0.8], |c, v| c.decay_factor = v),
    ));

    // (h) Delay time (paper milliseconds, scaled; workload beat fixed).
    {
        let s = move |c: &mut tsvd_core::TsvdConfig, ms: u64| {
            c.delay_ns = ((ms_to_ns(ms) as f64) * scale).round().max(1.0) as u64;
        };
        tables.push(sweep(
            &format!("Figure 9(h): delay time, paper-ms ({n} modules)"),
            "delay(ms)",
            &suite,
            base_ns,
            &options,
            settings(&[1u64, 10, 50, 100, 200], s),
        ));
    }

    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_produces_eight_panels() {
        let opts = ExpOpts {
            modules: 25,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 8);
        assert!(tables.iter().all(|t| t.len() >= 4));
    }
}
