//! Table 4: TSVD on the nine open-source project analogs.
//!
//! Paper's columns: LoC, # tests, # runs TSVD needed, # TSVs found,
//! overhead. Expected shape: every project's TSVs trigger within 2 runs,
//! mostly in run 1, at modest overhead.

use tsvd_workloads::module::ModuleCtx;
use tsvd_workloads::opensource::projects;

use crate::experiments::ExpOpts;
use crate::report::{overhead, Table};
use crate::runner::{run_module_once, DetectorKind};

/// Runs the Table 4 open-source evaluation.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let mut table = Table::new(
        "Table 4: TSVD on open-source project analogs",
        &[
            "project",
            "LoC",
            "# tests",
            "# run",
            "# TSV",
            "paper # TSV",
            "overhead",
        ],
    );
    let options = opts.run_options();

    for project in projects() {
        // Baseline wall time: one passive run.
        let rt = DetectorKind::Noop.build(options.config.clone());
        let ctx = ModuleCtx::new(rt, options.threads);
        let t0 = std::time::Instant::now();
        project.module.run(&ctx);
        let base_ns = t0.elapsed().as_nanos().max(1) as u64;

        // Up to two TSVD runs with trap-file carry-over, as in the paper.
        let mut trap_file = None;
        let mut found = 0usize;
        let mut found_run = 0usize;
        let mut wall_total = 0u64;
        let mut runs_used = 0usize;
        for run in 1..=2 {
            let module_run = run_module_once(
                &project.module,
                DetectorKind::Tsvd,
                &options,
                trap_file.as_ref(),
            );
            let (rt, wall) = (module_run.runtime, module_run.wall_ns);
            wall_total += wall;
            runs_used = run;
            trap_file = rt.export_trap_file();
            let bugs = rt.reports().unique_bugs();
            if bugs > 0 {
                found = bugs;
                found_run = run;
                break;
            }
        }
        let ovh = (wall_total as f64 / runs_used as f64 - base_ns as f64) / base_ns as f64 * 100.0;
        table.row(vec![
            project.info.name.to_string(),
            format!("{:.1}K", project.info.loc_k),
            project.info.tests.to_string(),
            if found > 0 {
                found_run.to_string()
            } else {
                "miss".to_string()
            },
            found.to_string(),
            project.info.paper_tsvs.to_string(),
            overhead(ovh),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_nine_rows() {
        let tables = run(&ExpOpts::default());
        assert_eq!(tables[0].len(), 9);
    }
}
