//! Table 2: comparing TSVD with the other detection techniques.
//!
//! Paper's columns: total bugs, bugs in run 1, bugs in run 2, overhead vs.
//! uninstrumented baseline, and number of injected delays — for
//! DataCollider, DynamicRandom, TSVD-HB, and TSVD on the Small suite.
//! Expected shape: TSVD finds the most bugs (most of them in run 1) at the
//! lowest overhead; the random techniques find few; TSVD-HB sits between
//! with several-times-higher overhead.

use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::{overhead, Table};
use crate::runner::{
    baseline_wall_ns, check_no_false_positives, overhead_pct, run_suite, DetectorKind,
};

/// Runs the Table 2 comparison.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let mut options = opts.run_options();
    options.runs = 2;

    let base_ns = baseline_wall_ns(&suite, &options);
    let mut table = Table::new(
        format!(
            "Table 2: detector comparison ({} modules, 2 runs)",
            suite.len()
        ),
        &["detector", "bugs", "run1", "run2", "overhead", "delays"],
    );
    for kind in DetectorKind::TABLE2 {
        let outcome = run_suite(&suite, kind, &options);
        check_no_false_positives(&suite, &outcome)
            .expect("no detector may report a bug in a clean module");
        table.row(vec![
            outcome.detector.to_string(),
            outcome.total_bugs().to_string(),
            outcome.bugs_in_run(1).to_string(),
            outcome.bugs_in_run(2).to_string(),
            overhead(overhead_pct(&outcome, base_ns)),
            outcome.total_delays().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_produces_four_rows() {
        let opts = ExpOpts {
            modules: 25,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 4);
    }
}
