//! §5.2 coverage report: instrumentation-point statistics.
//!
//! "Apart from the error reports, TSVD also reports statistics on the
//! instrumentation points that were hit during the test in any context and
//! in a concurrent context. One team found these 'coverage' statistics to
//! be very useful and identified a few blind spots in their testing, such
//! as critical parts only called in sequential contexts."
//!
//! This report aggregates exactly those statistics over the suite: per
//! collection class, how many static TSVD points executed at all, how many
//! ever executed inside a concurrent phase, and the blind-spot count.

use std::collections::HashMap;

use tsvd_workloads::module::ModuleCtx;
use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::{pct, Table};
use crate::runner::DetectorKind;

/// Runs the coverage report (single passive pass over the suite).
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let options = opts.run_options();

    // Aggregate per collection class: (sites hit, sites hit concurrently,
    // total hits).
    let mut per_class: HashMap<String, (usize, usize, u64)> = HashMap::new();
    let mut blind_spots = 0usize;
    let mut total_sites = 0usize;

    for module in &suite {
        let rt = DetectorKind::Noop.build(options.config.clone());
        let ctx = ModuleCtx::new(rt.clone(), options.threads);
        module.run(&ctx);
        for (site, cov) in rt.stats().coverage() {
            // Attribute the site to its module's dominant structure; the
            // exact op name is not retained in coverage, so class-level
            // aggregation uses module metadata.
            let class = module.structure().to_string();
            let entry = per_class.entry(class).or_default();
            entry.0 += 1;
            if cov.concurrent_hits > 0 {
                entry.1 += 1;
            } else {
                blind_spots += 1;
                let _ = site;
            }
            entry.2 += cov.hits;
            total_sites += 1;
        }
    }

    let mut t = Table::new(
        format!(
            "§5.2 coverage statistics ({} modules, passive pass)",
            suite.len()
        ),
        &[
            "class",
            "sites hit",
            "concurrent",
            "% concurrent",
            "total hits",
        ],
    );
    let mut classes: Vec<_> = per_class.into_iter().collect();
    classes.sort_by_key(|(_, (_, _, hits))| std::cmp::Reverse(*hits));
    for (class, (sites, concurrent, hits)) in classes {
        t.row(vec![
            class,
            sites.to_string(),
            concurrent.to_string(),
            pct(concurrent as f64 / sites.max(1) as f64),
            hits.to_string(),
        ]);
    }
    let mut summary = Table::new(
        "Coverage blind spots (sites never exercised concurrently)",
        &["metric", "value"],
    );
    summary.row(vec!["total dynamic sites".into(), total_sites.to_string()]);
    summary.row(vec!["blind spots".into(), blind_spots.to_string()]);
    summary.row(vec![
        "blind-spot fraction".into(),
        pct(blind_spots as f64 / total_sites.max(1) as f64),
    ]);
    vec![t, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_runs_on_tiny_suite() {
        let opts = ExpOpts {
            modules: 25,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert_eq!(tables[1].len(), 3);
    }
}
