//! Table 1: summary of bugs found on the Large suite.
//!
//! Reproduces the paper's three blocks — test targets, bugs found, and bug
//! properties (read-write share, same-location share, async share,
//! occurrence statistics, Dictionary/List shares) — from a TSVD run over
//! the Large suite analog, with per-violation metadata gathered directly
//! from each module's report sink.

use std::collections::{HashMap, HashSet};

use tsvd_core::TrapFileData;
use tsvd_workloads::module::Expectation;
use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::{pct, Table};
use crate::runner::{run_module_once, DetectorKind};

/// Per-suite aggregates for the Table 1 statistics.
#[derive(Default)]
struct Stats {
    unique_bugs: usize,
    unique_locations: usize,
    stack_pairs: usize,
    read_write_bugs: usize,
    same_location_bugs: usize,
    async_bugs: usize,
    dictionary_bugs: usize,
    list_bugs: usize,
    occurrences: Vec<usize>,
    stack_depths: Vec<usize>,
    modules_with_bugs: usize,
    families_with_bugs: HashSet<String>,
    total_tests: u64,
}

/// Runs the Table 1 statistics collection.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules.max(50),
        seed: opts.seed ^ 0x4C41,
    });
    let mut options = opts.run_options();
    options.runs = 2;
    // Stack capture is what the stack-trace-pair and stack-depth rows need.
    options.config.capture_stacks = true;

    let mut stats = Stats::default();
    let mut trap_files: HashMap<String, TrapFileData> = HashMap::new();
    let mut families: HashSet<String> = HashSet::new();

    for module in &suite {
        stats.total_tests += u64::from(module.tests());
        families.insert(family(module.name()));
    }

    // Dedup across runs: a fresh runtime per run can re-catch a bug the
    // previous run already found, so bug identity is (module, pair).
    let mut seen_bugs: HashSet<(String, tsvd_core::near_miss::SitePair)> = HashSet::new();
    let mut seen_locations: HashSet<(String, tsvd_core::SiteId)> = HashSet::new();
    let mut seen_stack_pairs: HashSet<String> = HashSet::new();
    let mut occurrences: HashMap<(String, tsvd_core::near_miss::SitePair), usize> = HashMap::new();
    let mut buggy_module_names: HashSet<String> = HashSet::new();

    for _run in 0..options.runs {
        for module in &suite {
            let rt = run_module_once(
                module,
                DetectorKind::Tsvd,
                &options,
                trap_files.get(module.name()),
            )
            .runtime;
            if let Some(tf) = rt.export_trap_file() {
                trap_files.insert(module.name().to_owned(), tf);
            }
            let sink = rt.reports();
            if sink.total_occurrences() == 0 {
                continue;
            }
            for v in sink.violations() {
                let pair = v.pair();
                let key = (module.name().to_owned(), pair);
                if let (Some(a), Some(b)) = (&v.trapped.stack, &v.hitter.stack) {
                    seen_stack_pairs.insert(format!("{}\u{1}{a}\u{1}{b}", module.name()));
                }
                if !seen_bugs.insert(key) {
                    continue;
                }
                seen_locations.insert((module.name().to_owned(), pair.first));
                seen_locations.insert((module.name().to_owned(), pair.second));
                if v.is_read_write() {
                    stats.read_write_bugs += 1;
                }
                if v.is_same_location() {
                    stats.same_location_bugs += 1;
                }
                if module.uses_async() {
                    stats.async_bugs += 1;
                }
                match module.structure() {
                    "Dictionary" | "Cache" => stats.dictionary_bugs += 1,
                    "List" => stats.list_bugs += 1,
                    _ => {}
                }
                if let Some(stack) = &v.hitter.stack {
                    stats.stack_depths.push(stack.lines().count() / 2);
                }
            }
            for (pair, count) in sink.occurrence_counts() {
                *occurrences
                    .entry((module.name().to_owned(), pair))
                    .or_insert(0) += count;
            }
            buggy_module_names.insert(module.name().to_owned());
            stats.families_with_bugs.insert(family(module.name()));
        }
    }
    stats.unique_bugs = seen_bugs.len();
    stats.unique_locations = seen_locations.len();
    stats.stack_pairs = seen_stack_pairs.len();
    stats.occurrences = occurrences.into_values().collect();
    stats.modules_with_bugs = buggy_module_names.len();

    let planted: usize = suite.iter().map(|m| m.expectation().planted_pairs()).sum();
    let buggy_modules = suite
        .iter()
        .filter(|m| m.expectation() != Expectation::Clean)
        .count();

    let frac = |n: usize| {
        if stats.unique_bugs == 0 {
            0.0
        } else {
            n as f64 / stats.unique_bugs as f64
        }
    };

    let mut t = Table::new(
        format!(
            "Table 1: summary of bugs found (TSVD, {} modules, 2 runs)",
            suite.len()
        ),
        &["metric", "value"],
    );
    t.row(vec!["# of modules".into(), suite.len().to_string()]);
    t.row(vec!["# of tests".into(), stats.total_tests.to_string()]);
    t.row(vec!["# planted racy pairs".into(), planted.to_string()]);
    t.row(vec![
        "# modules with planted bugs".into(),
        buggy_modules.to_string(),
    ]);
    t.row(vec![
        "# of unique bugs (location pairs)".into(),
        stats.unique_bugs.to_string(),
    ]);
    t.row(vec![
        "# of unique bug locations".into(),
        stats.unique_locations.to_string(),
    ]);
    t.row(vec![
        "# of unique stack trace pairs".into(),
        stats.stack_pairs.to_string(),
    ]);
    t.row(vec![
        "% of module families with bugs".into(),
        pct(stats.families_with_bugs.len() as f64 / families.len().max(1) as f64),
    ]);
    t.row(vec![
        "% of modules with bugs".into(),
        pct(stats.modules_with_bugs as f64 / suite.len().max(1) as f64),
    ]);
    t.row(vec![
        "% of read-write bugs".into(),
        pct(frac(stats.read_write_bugs)),
    ]);
    t.row(vec![
        "% of same location bugs".into(),
        pct(frac(stats.same_location_bugs)),
    ]);
    t.row(vec![
        "% of bugs in async code".into(),
        pct(frac(stats.async_bugs)),
    ]);
    t.row(vec![
        "Avg (median) occurrence of a bug location".into(),
        format!(
            "{:.1} ({})",
            mean(&stats.occurrences),
            median(&mut stats.occurrences.clone())
        ),
    ]);
    t.row(vec![
        "Avg stack depth".into(),
        format!("{:.1}", mean(&stats.stack_depths)),
    ]);
    t.row(vec![
        "% of Dictionary bugs".into(),
        pct(frac(stats.dictionary_bugs)),
    ]);
    t.row(vec!["% of List bugs".into(), pct(frac(stats.list_bugs))]);
    vec![t]
}

fn family(name: &str) -> String {
    name.split(':').nth(1).unwrap_or(name).to_string()
}

fn mean(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<usize>() as f64 / xs.len() as f64
}

fn median(xs: &mut [usize]) -> usize {
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs[xs.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2, 4]), 3.0);
        assert_eq!(median(&mut []), 0);
        assert_eq!(median(&mut [3, 1, 2]), 2);
        assert_eq!(family("m0001:dict-racy"), "dict-racy");
        assert_eq!(family("plain"), "plain");
    }

    #[test]
    fn table1_runs_on_small_input() {
        let opts = ExpOpts {
            modules: 50,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 14);
    }
}
