//! Figure 8: cumulative unique bugs over many runs, per detector.
//!
//! Expected shape: TSVD's curve dominates at every run count and saturates
//! early (most bugs in runs 1–2); TSVD-HB trails it; DataCollider and
//! DynamicRandom climb slowly and stay well below even after 50 runs.

use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::Table;
use crate::runner::{run_suite, DetectorKind};

/// Runs the Figure 8 accumulation experiment. `opts.runs` controls the
/// number of runs (the paper uses 50).
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let options = opts.run_options();
    let runs = options.runs.max(2);

    let mut curves = Vec::new();
    for kind in DetectorKind::TABLE2 {
        let mut o = options.clone();
        o.runs = runs;
        let outcome = run_suite(&suite, kind, &o);
        curves.push((kind.name(), outcome.cumulative_bugs()));
    }

    let mut table = Table::new(
        format!(
            "Figure 8: cumulative unique bugs over {} runs ({} modules)",
            runs,
            suite.len()
        ),
        &["run", "DataCollider", "DynamicRandom", "TSVD-HB", "TSVD"],
    );
    for run in 0..runs {
        table.row(
            std::iter::once((run + 1).to_string())
                .chain(curves.iter().map(|(_, c)| c[run].to_string()))
                .collect(),
        );
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_produces_one_row_per_run() {
        let opts = ExpOpts {
            modules: 25,
            runs: 3,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables[0].len(), 3);
    }
}
