//! Extension experiment (beyond the paper): one shared trap file for the
//! whole suite.
//!
//! The paper persists one trap file *per test*. In a monorepo, modules
//! exercise the same library code, so the static locations of a dangerous
//! pair discovered while testing one module exist in every other module
//! built from that code. Sharing the trap file lets modules scheduled
//! later in the same run start pre-armed — moving run-2 catches into
//! run 1 at the cost of some extra (decay-bounded) delays at pre-armed
//! locations that never race in a given module.
//!
//! In this corpus, generated modules literally share scenario source, so
//! the effect is pronounced; the mechanism is the interesting part.

use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::{overhead, Table};
use crate::runner::{baseline_wall_ns, overhead_pct, run_suite, DetectorKind};

/// Runs the shared-trap-file comparison.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let mut options = opts.run_options();
    options.runs = 2;
    let base_ns = baseline_wall_ns(&suite, &options);

    let mut table = Table::new(
        format!(
            "Extension: shared trap file across modules ({} modules, 2 runs)",
            suite.len()
        ),
        &["variant", "bugs", "run1", "run2", "overhead", "delays"],
    );
    for (name, shared) in [
        ("per-module trap files (paper)", false),
        ("shared trap file (extension)", true),
    ] {
        let mut o = options.clone();
        o.shared_trap_file = shared;
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &o);
        table.row(vec![
            name.to_string(),
            outcome.total_bugs().to_string(),
            outcome.bugs_in_run(1).to_string(),
            outcome.bugs_in_run(2).to_string(),
            overhead(overhead_pct(&outcome, base_ns)),
            outcome.total_delays().to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_shared_produces_two_rows() {
        let opts = ExpOpts {
            modules: 25,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables[0].len(), 2);
    }
}
