//! §5.3: false-negative analysis.
//!
//! As in the paper, ground truth is best-effort: the union of bugs found by
//! all four detectors over many accumulated runs, plus the suite's planted
//! expectations. TSVD's 2-run misses are then classified into the paper's
//! three categories using the scenario ground truth:
//!
//! 1. **near-miss false negatives** — rare-schedule pairs the window never
//!    saw (the `rare-pair` scenario);
//! 2. **HB-inference false negatives** — pairs wrongly pruned as ordered;
//! 3. **delay-length / timing false negatives** — armed pairs whose delays
//!    never lined up (everything else, including single-shot points when
//!    run 2's injection misses).

use std::collections::HashSet;

use tsvd_workloads::module::Expectation;
use tsvd_workloads::suite::{build_suite, SuiteConfig};

use crate::experiments::ExpOpts;
use crate::report::Table;
use crate::runner::{run_suite, BugKey, DetectorKind};

/// Runs the false-negative classification.
pub fn run(opts: &ExpOpts) -> Vec<Table> {
    let suite = build_suite(SuiteConfig {
        modules: opts.modules,
        seed: opts.seed,
    });
    let options = opts.run_options();

    // Best-effort ground truth: all detectors, accumulated runs.
    let truth_runs = opts.runs.max(10);
    let mut truth: HashSet<BugKey> = HashSet::new();
    for kind in DetectorKind::TABLE2 {
        let mut o = options.clone();
        o.runs = truth_runs;
        let outcome = run_suite(&suite, kind, &o);
        truth.extend(outcome.bugs.keys().cloned());
    }

    // TSVD with the paper's 2-run budget.
    let mut o2 = options.clone();
    o2.runs = 2;
    let tsvd = run_suite(&suite, DetectorKind::Tsvd, &o2);
    let found: HashSet<BugKey> = tsvd.bugs.keys().cloned().collect();
    let missed: Vec<&BugKey> = truth.difference(&found).collect();

    let mut near_miss_fn = 0usize;
    let mut delay_len_fn = 0usize;
    let mut timing_fn = 0usize;
    for (module, _pair) in &missed {
        if module.contains("rare-pair") {
            near_miss_fn += 1;
        } else if module.contains("slow-partner") {
            delay_len_fn += 1;
        } else {
            timing_fn += 1;
        }
    }

    // HB-inference FNs are planted bugs in lock-adjacent scenarios that no
    // 2-run TSVD found but whose module ground truth says are real.
    let hb_fn = suite
        .iter()
        .filter(|m| m.name().contains("lock-then-unprotected"))
        .filter(|m| m.expectation() != Expectation::Clean)
        .filter(|m| !found.iter().any(|(name, _)| name == m.name()))
        .count();

    let mut t = Table::new(
        format!(
            "§5.3 false negatives (truth: 4 detectors x {truth_runs} runs; TSVD: 2 runs; {} modules)",
            suite.len()
        ),
        &["metric", "count"],
    );
    t.row(vec!["ground-truth bugs".into(), truth.len().to_string()]);
    t.row(vec!["TSVD bugs in 2 runs".into(), found.len().to_string()]);
    t.row(vec![
        "missed by TSVD in 2 runs".into(),
        missed.len().to_string(),
    ]);
    t.row(vec![
        "  category 1: near-miss FN (rare schedules)".into(),
        near_miss_fn.to_string(),
    ]);
    t.row(vec![
        "  category 2: HB-inference FN (wrongly pruned)".into(),
        hb_fn.to_string(),
    ]);
    t.row(vec![
        "  category 3: delay-length FN (slow partner)".into(),
        delay_len_fn.to_string(),
    ]);
    t.row(vec![
        "  other timing FN".into(),
        timing_fn.saturating_sub(hb_fn).to_string(),
    ]);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fneg_runs_on_tiny_suite() {
        let opts = ExpOpts {
            modules: 25,
            runs: 3,
            ..ExpOpts::default()
        };
        let tables = run(&opts);
        assert_eq!(tables[0].len(), 7);
    }
}
