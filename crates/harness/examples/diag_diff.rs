//! Diagnostic: per-scenario-family unique-bug counts (with run-1 share)
//! for TSVD vs. TSVD-HB over a generated suite.
//!
//! ```text
//! cargo run --release -p tsvd-harness --example diag_diff -- 200
//! ```
fn main() {
    use std::collections::HashMap;
    use tsvd_core::TsvdConfig;
    use tsvd_harness::runner::{run_suite, DetectorKind, RunOptions};
    use tsvd_workloads::suite::{build_suite, SuiteConfig};
    let modules: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let suite = build_suite(SuiteConfig {
        modules,
        seed: 0x534D_414C,
    });
    let options = RunOptions {
        config: TsvdConfig::paper().scaled(0.02),
        threads: 2,
        runs: 2,
        shared_trap_file: false,
        module_deadline: Some(std::time::Duration::from_secs(30)),
        static_priors: None,
    };
    let mut per: HashMap<&'static str, HashMap<String, (usize, usize)>> = HashMap::new();
    for kind in [DetectorKind::Tsvd, DetectorKind::TsvdHb] {
        let outcome = run_suite(&suite, kind, &options);
        let m = per.entry(kind.name()).or_default();
        for ((module, _), run) in outcome.bugs {
            let fam = module.split(':').nth(1).unwrap_or("?").to_string();
            let e = m.entry(fam).or_default();
            e.0 += 1;
            if run == 1 {
                e.1 += 1;
            }
        }
    }
    let mut fams: Vec<String> = per.values().flat_map(|m| m.keys().cloned()).collect();
    fams.sort();
    fams.dedup();
    println!("{:24} {:>12} {:>12}", "family", "TSVD(r1)", "TSVD-HB(r1)");
    for f in fams {
        let a = per["TSVD"].get(&f).copied().unwrap_or((0, 0));
        let b = per["TSVD-HB"].get(&f).copied().unwrap_or((0, 0));
        println!("{:24} {:>6}({:>3}) {:>6}({:>3})", f, a.0, a.1, b.0, b.1);
    }
}
