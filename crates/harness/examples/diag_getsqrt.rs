//! Diagnostic: which violation pairs each detector catches in the
//! `getsqrt-cache` scenario (Fig. 3/4 — expected: put/put and
//! put/contains_key).
//!
//! ```text
//! cargo run --release -p tsvd-harness --example diag_getsqrt
//! ```
fn main() {
    use tsvd_core::TsvdConfig;
    use tsvd_harness::runner::{run_module_once, DetectorKind, RunOptions};
    let options = RunOptions {
        config: TsvdConfig::paper().scaled(0.02),
        threads: 2,
        runs: 1,
        shared_trap_file: false,
        module_deadline: Some(std::time::Duration::from_secs(30)),
        static_priors: None,
    };
    for kind in [DetectorKind::Tsvd, DetectorKind::TsvdHb] {
        let m = tsvd_workloads::scenarios::paper_examples::getsqrt_cache(3);
        let rt = run_module_once(&m, kind, &options, None).runtime;
        println!(
            "== {} delays={} bugs={}",
            kind.name(),
            rt.stats().delays_injected(),
            rt.reports().unique_bugs()
        );
        let mut seen = std::collections::HashSet::new();
        for v in rt.reports().violations() {
            if seen.insert(v.pair()) {
                println!("  {} / {}", v.trapped.op_name, v.hitter.op_name);
            }
        }
    }
}
