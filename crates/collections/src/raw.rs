//! The raw storage cell: memory-safe storage with a contract-violation
//! sentinel.
//!
//! See the crate docs for why the reproduction must not commit real data
//! races: the cell serializes the underlying memory (an implementation
//! detail the detector never sees) while entry/exit counters physically
//! witness every thread-safety-contract violation — the semantic analog of
//! .NET's silent corruption.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Memory-safe storage whose access counters latch contract violations.
pub struct RawCell<C> {
    storage: Mutex<C>,
    writers: AtomicUsize,
    readers: AtomicUsize,
    corrupted: AtomicBool,
}

impl<C> RawCell<C> {
    /// Wraps `value`.
    pub fn new(value: C) -> Self {
        RawCell {
            storage: Mutex::new(value),
            writers: AtomicUsize::new(0),
            readers: AtomicUsize::new(0),
            corrupted: AtomicBool::new(false),
        }
    }

    /// Enters a *write* method under the contract.
    ///
    /// The contract window spans the whole method call — including the
    /// instrumentation (and any injected delay) that runs before the
    /// storage operation, exactly like the paper's proxy methods — so a
    /// caught trap is also a physically witnessed overlap. Latches
    /// `corrupted` if any other access is in flight.
    pub fn enter_write(&self) -> WriteSection<'_, C> {
        let other_writers = self.writers.fetch_add(1, Ordering::SeqCst);
        let readers = self.readers.load(Ordering::SeqCst);
        if other_writers > 0 || readers > 0 {
            self.corrupted.store(true, Ordering::SeqCst);
        }
        WriteSection { cell: self }
    }

    /// Enters a *read* method under the contract.
    ///
    /// Latches `corrupted` if a write is in flight — reads may run
    /// concurrently with each other, but not with writes.
    pub fn enter_read(&self) -> ReadSection<'_, C> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        if self.writers.load(Ordering::SeqCst) > 0 {
            self.corrupted.store(true, Ordering::SeqCst);
        }
        ReadSection { cell: self }
    }

    /// Convenience: enter a write section and immediately perform `f`.
    pub fn write<R>(&self, f: impl FnOnce(&mut C) -> R) -> R {
        self.enter_write().perform(f)
    }

    /// Convenience: enter a read section and immediately perform `f`.
    pub fn read<R>(&self, f: impl FnOnce(&C) -> R) -> R {
        self.enter_read().perform(f)
    }

    /// Returns `true` if a contract violation has ever been physically
    /// observed on this cell (the "torn state" witness).
    pub fn is_corrupted(&self) -> bool {
        self.corrupted.load(Ordering::SeqCst)
    }
}

/// An open write-method window. Dropping it exits the window.
pub struct WriteSection<'a, C> {
    cell: &'a RawCell<C>,
}

impl<C> WriteSection<'_, C> {
    /// Performs the storage operation; a late conflict check catches
    /// overlaps that began after entry.
    pub fn perform<R>(self, f: impl FnOnce(&mut C) -> R) -> R {
        if self.cell.writers.load(Ordering::SeqCst) > 1
            || self.cell.readers.load(Ordering::SeqCst) > 0
        {
            self.cell.corrupted.store(true, Ordering::SeqCst);
        }
        f(&mut self.cell.storage.lock())
    }
}

impl<C> Drop for WriteSection<'_, C> {
    fn drop(&mut self) {
        self.cell.writers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// An open read-method window. Dropping it exits the window.
pub struct ReadSection<'a, C> {
    cell: &'a RawCell<C>,
}

impl<C> ReadSection<'_, C> {
    /// Performs the storage operation; a late conflict check catches
    /// overlaps that began after entry.
    pub fn perform<R>(self, f: impl FnOnce(&C) -> R) -> R {
        if self.cell.writers.load(Ordering::SeqCst) > 0 {
            self.cell.corrupted.store(true, Ordering::SeqCst);
        }
        f(&self.cell.storage.lock())
    }
}

impl<C> Drop for ReadSection<'_, C> {
    fn drop(&mut self) {
        self.cell.readers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn sequential_use_is_clean() {
        let cell = RawCell::new(Vec::<u32>::new());
        cell.write(|v| v.push(1));
        assert_eq!(cell.read(|v| v.len()), 1);
        assert!(!cell.is_corrupted());
    }

    #[test]
    fn concurrent_reads_are_clean() {
        let cell = RawCell::new(42u64);
        let barrier = Barrier::new(4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    barrier.wait();
                    for _ in 0..1000 {
                        cell.read(|v| *v);
                    }
                });
            }
        });
        assert!(!cell.is_corrupted(), "read-read is allowed by the contract");
    }

    #[test]
    fn overlapping_writes_latch_corruption() {
        // Construct a guaranteed overlap (works even on one CPU): thread A
        // blocks *inside* its write while thread B enters a second write.
        let cell = RawCell::new(0u64);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                cell.write(|v| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    *v += 1;
                });
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            cell.write(|v| *v += 1);
        });
        assert!(cell.is_corrupted(), "write-write overlap must latch");
        assert_eq!(cell.read(|v| *v), 2, "storage itself stays consistent");
    }

    #[test]
    fn read_during_write_latches_corruption() {
        let cell = RawCell::new(7u64);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                cell.write(|v| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    *v += 1;
                });
            });
            std::thread::sleep(std::time::Duration::from_millis(5));
            cell.read(|v| *v);
        });
        assert!(cell.is_corrupted(), "torn read must latch");
    }

    #[test]
    fn value_integrity_is_preserved() {
        // Memory safety holds even under contract violations.
        let cell = RawCell::new(Vec::<u64>::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cell = &cell;
                scope.spawn(move || {
                    for i in 0..1000 {
                        cell.write(|v| v.push(t * 10_000 + i));
                    }
                });
            }
        });
        assert_eq!(cell.read(|v| v.len()), 4000);
    }
}
