//! `SortedList<K, V>`: instrumented ordered map (the `SortedList` /
//! `SortedDictionary` analog).

use std::collections::BTreeMap;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented ordered map with a reads-share/writes-exclusive
    /// thread-safety contract.
    SortedList<K, V> wraps BTreeMap<K, V>
}

impl<K: Ord + Clone, V: Clone> SortedList<K, V> {
    /// Adds `key → value` if absent; returns `false` if the key existed
    /// (write API).
    #[track_caller]
    pub fn add(&self, key: K, value: V) -> bool {
        let site = tsvd_core::site!();
        self.inner.write(site, "SortedList.add", |m| {
            if let std::collections::btree_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(value);
                true
            } else {
                false
            }
        })
    }

    /// Inserts `key → value`, overwriting (write API).
    #[track_caller]
    pub fn set(&self, key: K, value: V) {
        let site = tsvd_core::site!();
        self.inner.write(site, "SortedList.set", |m| {
            m.insert(key, value);
        });
    }

    /// Removes `key`, returning its value (write API).
    #[track_caller]
    pub fn remove(&self, key: &K) -> Option<V> {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "SortedList.remove", |m| m.remove(key))
    }

    /// Removes every entry (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "SortedList.clear", |m| m.clear());
    }

    /// Looks up `key` (read API).
    #[track_caller]
    pub fn get(&self, key: &K) -> Option<V> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedList.get", |m| m.get(key).cloned())
    }

    /// Returns `true` if `key` is present (read API).
    #[track_caller]
    pub fn contains_key(&self, key: &K) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedList.contains_key", |m| m.contains_key(key))
    }

    /// Smallest entry (read API).
    #[track_caller]
    pub fn first(&self) -> Option<(K, V)> {
        let site = tsvd_core::site!();
        self.inner.read(site, "SortedList.first", |m| {
            m.iter().next().map(|(k, v)| (k.clone(), v.clone()))
        })
    }

    /// Largest entry (read API).
    #[track_caller]
    pub fn last(&self) -> Option<(K, V)> {
        let site = tsvd_core::site!();
        self.inner.read(site, "SortedList.last", |m| {
            m.iter().next_back().map(|(k, v)| (k.clone(), v.clone()))
        })
    }

    /// Number of entries (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "SortedList.len", |m| m.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedList.is_empty", |m| m.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn ordering_is_maintained() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let m: SortedList<u32, &str> = SortedList::new(&rt);
        m.add(3, "c");
        m.add(1, "a");
        m.add(2, "b");
        assert_eq!(m.first(), Some((1, "a")));
        assert_eq!(m.last(), Some((3, "c")));
    }

    #[test]
    fn add_set_remove() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let m: SortedList<u32, u32> = SortedList::new(&rt);
        assert!(m.add(1, 10));
        assert!(!m.add(1, 11));
        assert_eq!(m.get(&1), Some(10));
        m.set(1, 11);
        assert_eq!(m.get(&1), Some(11));
        assert_eq!(m.remove(&1), Some(11));
        assert!(m.is_empty());
    }

    #[test]
    fn contains_len_clear() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let m: SortedList<u32, u32> = SortedList::new(&rt);
        m.add(1, 1);
        assert!(m.contains_key(&1));
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(!m.contains_key(&1));
    }
}
