//! `Stack<T>`: instrumented LIFO stack.

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented LIFO stack with a reads-share/writes-exclusive
    /// thread-safety contract.
    Stack<T> wraps Vec<T>
}

impl<T: Clone> Stack<T> {
    /// Pushes `value` on top (write API).
    #[track_caller]
    pub fn push(&self, value: T) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Stack.push", |s| s.push(value));
    }

    /// Pops the top element (write API).
    #[track_caller]
    pub fn pop(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner.write(site, "Stack.pop", |s| s.pop())
    }

    /// Removes every element (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Stack.clear", |s| s.clear());
    }

    /// Returns the top element without removing it (read API).
    #[track_caller]
    pub fn peek(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner.read(site, "Stack.peek", |s| s.last().cloned())
    }

    /// Number of elements (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "Stack.len", |s| s.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner.read(site, "Stack.is_empty", |s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn lifo_order() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let s: Stack<u32> = Stack::new(&rt);
        s.push(1);
        s.push(2);
        assert_eq!(s.peek(), Some(2));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn clear_and_len() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let s: Stack<u32> = Stack::new(&rt);
        s.push(1);
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }
}
