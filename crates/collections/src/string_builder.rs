//! `StringBuilder`: instrumented mutable string (the .NET `StringBuilder`
//! analog).

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented mutable string buffer with a reads-share/
    /// writes-exclusive thread-safety contract.
    StringBuilder<> wraps String
}

impl StringBuilder {
    /// Appends `text` (write API).
    #[track_caller]
    pub fn append(&self, text: &str) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "StringBuilder.append", |s| s.push_str(text));
    }

    /// Appends a single character (write API).
    #[track_caller]
    pub fn append_char(&self, c: char) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "StringBuilder.append_char", |s| s.push(c));
    }

    /// Inserts `text` at byte offset `at` (write API).
    ///
    /// # Panics
    ///
    /// Panics if `at` is not a char boundary, matching `String::insert_str`.
    #[track_caller]
    pub fn insert(&self, at: usize, text: &str) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "StringBuilder.insert", |s| s.insert_str(at, text));
    }

    /// Clears the buffer (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "StringBuilder.clear", |s| s.clear());
    }

    /// Snapshot of the contents (read API).
    ///
    /// Named after .NET's `StringBuilder.ToString`; the lint about a
    /// `Display`-less inherent `to_string` is intentional here.
    #[allow(clippy::inherent_to_string)]
    #[track_caller]
    pub fn to_string(&self) -> String {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "StringBuilder.to_string", |s| s.clone())
    }

    /// Length in bytes (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "StringBuilder.len", |s| s.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "StringBuilder.is_empty", |s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn append_and_read() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let sb = StringBuilder::new(&rt);
        sb.append("hello");
        sb.append_char(' ');
        sb.append("world");
        assert_eq!(sb.to_string(), "hello world");
        assert_eq!(sb.len(), 11);
    }

    #[test]
    fn insert_and_clear() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let sb = StringBuilder::new(&rt);
        sb.append("ac");
        sb.insert(1, "b");
        assert_eq!(sb.to_string(), "abc");
        sb.clear();
        assert!(sb.is_empty());
    }
}
