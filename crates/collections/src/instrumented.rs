//! The shared instrumentation shim between a collection wrapper and the
//! runtime — the analog of the generated proxy methods of Fig. 7.

use std::sync::Arc;

use tsvd_core::{ObjId, OpKind, Runtime, SiteId};

use crate::raw::RawCell;

/// Instrumented storage: a [`RawCell`] plus an optional runtime hookup.
///
/// Collection wrappers hold an `Arc<Instrumented<C>>` (reference semantics,
/// like .NET objects) and route every public method through [`write`] or
/// [`read`], which report the access triple before touching storage.
///
/// [`write`]: Instrumented::write
/// [`read`]: Instrumented::read
pub struct Instrumented<C> {
    raw: RawCell<C>,
    runtime: Option<Arc<Runtime>>,
    obj_id: ObjId,
}

/// Object identities are a process-global monotonic counter rather than the
/// storage address: addresses are reused after free, and an aliased id
/// would fabricate conflicts between unrelated short-lived objects (the
/// hash-code-collision hazard the paper's `GetHashCode` identity also has,
/// amplified by Rust's eager deallocation).
fn next_obj_id() -> ObjId {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    ObjId(NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
}

impl<C> Instrumented<C> {
    /// Creates instrumented storage reporting to `runtime`.
    pub fn new(value: C, runtime: Arc<Runtime>) -> Arc<Self> {
        Arc::new(Instrumented {
            raw: RawCell::new(value),
            runtime: Some(runtime),
            obj_id: next_obj_id(),
        })
    }

    /// Creates unmonitored storage (no `OnCall`s emitted).
    pub fn unmonitored(value: C) -> Arc<Self> {
        Arc::new(Instrumented {
            raw: RawCell::new(value),
            runtime: None,
            obj_id: next_obj_id(),
        })
    }

    /// This object's identity, as seen by the detector.
    pub fn obj_id(self: &Arc<Self>) -> ObjId {
        self.obj_id
    }

    /// Reports and performs a write-classified operation.
    ///
    /// The contract window opens *before* `on_call` — the instrumentation
    /// (and any injected delay) runs inside the method, exactly like the
    /// paper's generated proxies (Fig. 7) — so a trap caught red-handed is
    /// also a physically witnessed window overlap.
    pub fn write<R>(
        self: &Arc<Self>,
        site: SiteId,
        op_name: &'static str,
        f: impl FnOnce(&mut C) -> R,
    ) -> R {
        // The shared API table is the single source of truth for read/write
        // classification; an op it classifies as a read must never be
        // reported through the write path. Names absent from the table
        // (custom instrumented types) are allowed.
        debug_assert_ne!(
            tsvd_core::access::classify_op(op_name),
            Some(OpKind::Read),
            "{op_name} is read-classified in the shared API table but was reported as a write"
        );
        let section = self.raw.enter_write();
        if let Some(rt) = &self.runtime {
            rt.on_call(self.obj_id(), site, op_name, OpKind::Write);
        }
        section.perform(f)
    }

    /// Reports and performs a read-classified operation.
    pub fn read<R>(
        self: &Arc<Self>,
        site: SiteId,
        op_name: &'static str,
        f: impl FnOnce(&C) -> R,
    ) -> R {
        debug_assert_ne!(
            tsvd_core::access::classify_op(op_name),
            Some(OpKind::Write),
            "{op_name} is write-classified in the shared API table but was reported as a read"
        );
        let section = self.raw.enter_read();
        if let Some(rt) = &self.runtime {
            rt.on_call(self.obj_id(), site, op_name, OpKind::Read);
        }
        section.perform(f)
    }

    /// Returns `true` if a contract violation was physically observed.
    pub fn is_corrupted(&self) -> bool {
        self.raw.is_corrupted()
    }
}

/// Generates the boilerplate shared by all collection wrappers: handle
/// struct with reference (`Clone`) semantics, constructors, `obj_id`, and
/// the corruption witness.
macro_rules! collection_handle {
    ($(#[$meta:meta])* $name:ident<$($g:ident),*> wraps $storage:ty) => {
        $(#[$meta])*
        pub struct $name<$($g),*> {
            inner: std::sync::Arc<$crate::instrumented::Instrumented<$storage>>,
        }

        impl<$($g),*> Clone for $name<$($g),*> {
            /// Clones the *handle*, not the data — reference semantics,
            /// like a .NET object shared across threads.
            fn clone(&self) -> Self {
                Self { inner: self.inner.clone() }
            }
        }

        impl<$($g),*> $name<$($g),*> {
            /// Creates an empty instrumented collection reporting to `rt`.
            pub fn new(rt: &std::sync::Arc<tsvd_core::Runtime>) -> Self {
                Self {
                    inner: $crate::instrumented::Instrumented::new(
                        Default::default(),
                        rt.clone(),
                    ),
                }
            }

            /// Creates an empty unmonitored collection.
            pub fn unmonitored() -> Self {
                Self {
                    inner: $crate::instrumented::Instrumented::unmonitored(Default::default()),
                }
            }

            /// The detector-visible identity of this object.
            pub fn obj_id(&self) -> tsvd_core::ObjId {
                self.inner.obj_id()
            }

            /// Returns `true` if a thread-safety-contract violation was
            /// physically witnessed on this object.
            pub fn is_corrupted(&self) -> bool {
                self.inner.is_corrupted()
            }
        }
    };
}

pub(crate) use collection_handle;

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::TsvdConfig;

    #[test]
    fn write_and_read_report_to_runtime() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let cell = Instrumented::new(Vec::<u32>::new(), rt.clone());
        cell.write(tsvd_core::site!(), "test.push", |v| v.push(1));
        let len = cell.read(tsvd_core::site!(), "test.len", |v| v.len());
        assert_eq!(len, 1);
        assert_eq!(rt.stats().on_calls(), 2);
    }

    #[test]
    fn unmonitored_storage_reports_nothing() {
        let cell = Instrumented::unmonitored(0u32);
        cell.write(tsvd_core::site!(), "test.set", |v| *v = 5);
        assert_eq!(cell.read(tsvd_core::site!(), "test.get", |v| *v), 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "read-classified")]
    fn table_misuse_write_path_is_rejected() {
        let cell = Instrumented::unmonitored(Vec::<u32>::new());
        // `Dictionary.get` is a read API; reporting it as a write must trip
        // the shared-table cross-check.
        cell.write(tsvd_core::site!(), "Dictionary.get", |v| v.len());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "write-classified")]
    fn table_misuse_read_path_is_rejected() {
        let cell = Instrumented::unmonitored(Vec::<u32>::new());
        cell.read(tsvd_core::site!(), "Dictionary.add", |v| v.len());
    }

    #[test]
    fn obj_id_is_stable_and_distinct() {
        let a = Instrumented::unmonitored(0u32);
        let b = Instrumented::unmonitored(0u32);
        assert_eq!(a.obj_id(), a.obj_id());
        assert_ne!(a.obj_id(), b.obj_id());
    }
}
