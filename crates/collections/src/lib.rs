//! Instrumented thread-unsafe collections.
//!
//! These are the Rust analogs of the 14 thread-unsafe .NET classes TSVD
//! instruments (§4): each public method calls the runtime's `OnCall` with
//! the access triple `(thread, object, call-site)` *before* performing the
//! operation, exactly like the proxy methods the paper's binary rewriter
//! injects (Fig. 7). The call-site is captured with `#[track_caller]`, so
//! the reported location is the client code's line, not the wrapper's.
//!
//! ## Thread-safety contract and the corruption sentinel
//!
//! Like their .NET counterparts, these collections allow concurrent *reads*
//! but require *writes* to be exclusive. Violating the contract in .NET is
//! undefined behaviour (silent corruption); in Rust, actually racing on the
//! underlying memory would be UB too, which a reproduction must not commit.
//! Instead, each collection's storage sits behind [`raw::RawCell`]: an
//! internal serialization lock that preserves *memory* safety, plus entry/
//! exit counters that *observe* every contract violation physically. When a
//! write overlaps another access the cell's `corrupted` flag latches — the
//! semantic analog of .NET's silent corruption — so stress tests can
//! witness real torn behaviour without undefined behaviour. The internal
//! lock is an implementation detail invisible to detection: TSVD flags the
//! *contract* violation (two threads inside conflicting methods), which is
//! precisely what it detects in C#.
//!
//! # Examples
//!
//! ```
//! use tsvd_core::{Runtime, TsvdConfig};
//! use tsvd_collections::Dictionary;
//!
//! let rt = Runtime::tsvd(TsvdConfig::for_testing());
//! let dict: Dictionary<String, u32> = Dictionary::new(&rt);
//! dict.add("one".to_string(), 1);
//! assert_eq!(dict.get(&"one".to_string()), Some(1));
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod bit_array;
pub mod cache;
pub mod dictionary;
pub mod hash_set;
pub mod instrumented;
pub mod linked_deque;
pub mod list;
pub mod multi_map;
pub mod priority_queue;
pub mod queue;
pub mod raw;
pub mod sorted_list;
pub mod sorted_set;
pub mod stack;
pub mod string_builder;

pub use bit_array::BitArray;
pub use cache::Cache;
pub use dictionary::Dictionary;
pub use hash_set::HashSet;
pub use linked_deque::LinkedDeque;
pub use list::List;
pub use multi_map::MultiMap;
pub use priority_queue::PriorityQueue;
pub use queue::Queue;
pub use sorted_list::SortedList;
pub use sorted_set::SortedSet;
pub use stack::Stack;
pub use string_builder::StringBuilder;
