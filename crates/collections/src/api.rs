//! The extensible list of thread-unsafe APIs and their read/write
//! classification (§4).
//!
//! The paper ships TSVD with a list of 14 thread-unsafe .NET classes, 59
//! write-APIs and 64 read-APIs, "so a developer can use TSVD without
//! additional configuration". This registry is that list for the 10
//! collection classes of this crate: 50 write-APIs and 54 read-APIs. Tests
//! assert that every wrapper method reports an operation name present here
//! with the matching classification.

use tsvd_core::OpKind;

/// One classified thread-unsafe API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApiEntry {
    /// Fully qualified operation name, e.g. `"Dictionary.add"`.
    pub name: &'static str,
    /// Read/write classification under the thread-safety contract.
    pub kind: OpKind,
}

macro_rules! api_table {
    ($($class:literal => { W: [$($w:literal),* $(,)?], R: [$($r:literal),* $(,)?] }),* $(,)?) => {
        /// Every classified API, grouped write-then-read per class.
        pub const API_TABLE: &[ApiEntry] = &[
            $(
                $(ApiEntry { name: concat!($class, ".", $w), kind: OpKind::Write },)*
                $(ApiEntry { name: concat!($class, ".", $r), kind: OpKind::Read },)*
            )*
        ];
    };
}

api_table! {
    "Dictionary" => {
        W: ["add", "set", "remove", "clear"],
        R: ["get", "contains_key", "len", "is_empty", "keys", "values"]
    },
    "List" => {
        W: ["add", "insert", "remove_at", "set", "clear", "sort"],
        R: ["get", "len", "is_empty", "to_vec", "contains"]
    },
    "HashSet" => {
        W: ["add", "remove", "clear"],
        R: ["contains", "len", "is_empty", "to_vec"]
    },
    "Queue" => {
        W: ["enqueue", "dequeue", "clear"],
        R: ["peek", "len", "is_empty"]
    },
    "Stack" => {
        W: ["push", "pop", "clear"],
        R: ["peek", "len", "is_empty"]
    },
    "SortedList" => {
        W: ["add", "set", "remove", "clear"],
        R: ["get", "contains_key", "first", "last", "len", "is_empty"]
    },
    "LinkedDeque" => {
        W: ["push_front", "push_back", "pop_front", "pop_back", "clear"],
        R: ["front", "back", "len", "is_empty"]
    },
    "StringBuilder" => {
        W: ["append", "append_char", "insert", "clear"],
        R: ["to_string", "len", "is_empty"]
    },
    "Cache" => {
        W: ["set_capacity", "put", "invalidate", "clear"],
        R: ["get", "contains_key", "len", "is_empty"]
    },
    "BitArray" => {
        W: ["resize", "set", "flip", "clear_all"],
        R: ["get", "count_ones", "capacity"]
    },
    "SortedSet" => {
        W: ["add", "remove", "clear"],
        R: ["contains", "min", "max", "len", "is_empty", "to_vec"]
    },
    "MultiMap" => {
        W: ["add", "remove_value", "remove_key", "clear"],
        R: ["get", "contains_key", "key_count", "value_count"]
    },
    "PriorityQueue" => {
        W: ["push", "pop", "clear"],
        R: ["peek", "len", "is_empty"]
    },
}

/// Looks up the classification of `op_name`, or `None` if the API is not in
/// the thread-unsafe list.
pub fn classify(op_name: &str) -> Option<OpKind> {
    API_TABLE.iter().find(|e| e.name == op_name).map(|e| e.kind)
}

/// Number of write-classified APIs.
pub fn write_api_count() -> usize {
    API_TABLE.iter().filter(|e| e.kind == OpKind::Write).count()
}

/// Number of read-classified APIs.
pub fn read_api_count() -> usize {
    API_TABLE.iter().filter(|e| e.kind == OpKind::Read).count()
}

/// Number of distinct instrumented classes.
pub fn class_count() -> usize {
    let mut classes: Vec<&str> = API_TABLE
        .iter()
        .filter_map(|e| e.name.split('.').next())
        .collect();
    classes.sort_unstable();
    classes.dedup();
    classes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape() {
        assert_eq!(class_count(), 13);
        assert_eq!(write_api_count(), 50);
        assert_eq!(read_api_count(), 54);
        assert_eq!(API_TABLE.len(), 104);
    }

    #[test]
    fn classify_known_apis() {
        assert_eq!(classify("Dictionary.add"), Some(OpKind::Write));
        assert_eq!(classify("Dictionary.contains_key"), Some(OpKind::Read));
        assert_eq!(classify("List.sort"), Some(OpKind::Write));
        assert_eq!(classify("Cache.get"), Some(OpKind::Read));
    }

    #[test]
    fn classify_unknown_api() {
        assert_eq!(classify("ConcurrentDictionary.add"), None);
        assert_eq!(classify(""), None);
    }

    #[test]
    fn no_duplicate_entries() {
        let mut names: Vec<&str> = API_TABLE.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
