//! The extensible list of thread-unsafe APIs and their read/write
//! classification (§4).
//!
//! The table itself lives in [`tsvd_core::access`] so there is exactly one
//! source of truth shared by the dynamic side (these wrappers) and the
//! static side (the `tsvd-analyze` front end). This module re-exports it
//! under its historical location; `classify` is kept as an alias of
//! [`tsvd_core::access::classify_op`].

pub use tsvd_core::access::{class_count, read_api_count, write_api_count, ApiEntry, API_TABLE};

use tsvd_core::OpKind;

/// Looks up the classification of `op_name`, or `None` if the API is not in
/// the thread-unsafe list. Alias of [`tsvd_core::access::classify_op`].
pub fn classify(op_name: &str) -> Option<OpKind> {
    tsvd_core::access::classify_op(op_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_table_is_the_core_table() {
        assert_eq!(API_TABLE.len(), tsvd_core::access::API_TABLE.len());
        assert_eq!(classify("Dictionary.add"), Some(OpKind::Write));
        assert_eq!(classify("Cache.get"), Some(OpKind::Read));
        assert_eq!(classify("ConcurrentDictionary.add"), None);
    }

    #[test]
    fn table_shape_is_stable() {
        assert_eq!(class_count(), 13);
        assert_eq!(write_api_count(), 50);
        assert_eq!(read_api_count(), 54);
    }
}
