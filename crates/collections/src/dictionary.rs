//! `Dictionary<K, V>`: the analog of .NET's `Dictionary` — the data
//! structure behind 55 % of the bugs TSVD found (Table 1), usually because
//! developers assume that concurrent writes to *different keys* are safe
//! (the Fig. 1 pattern). They are not: any write requires exclusivity.

use std::collections::HashMap;
use std::hash::Hash;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented hash dictionary with a reads-share/writes-exclusive
    /// thread-safety contract.
    Dictionary<K, V> wraps HashMap<K, V>
}

impl<K: Eq + Hash + Clone, V: Clone> Dictionary<K, V> {
    /// Adds `key → value` if absent; returns `false` if the key existed
    /// (write API).
    #[track_caller]
    pub fn add(&self, key: K, value: V) -> bool {
        let site = tsvd_core::site!();
        self.inner.write(site, "Dictionary.add", |m| {
            if let std::collections::hash_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(value);
                true
            } else {
                false
            }
        })
    }

    /// Inserts `key → value`, overwriting — the indexer-set analog
    /// (write API).
    #[track_caller]
    pub fn set(&self, key: K, value: V) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Dictionary.set", |m| {
            m.insert(key, value);
        });
    }

    /// Removes `key`, returning its value (write API).
    #[track_caller]
    pub fn remove(&self, key: &K) -> Option<V> {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "Dictionary.remove", |m| m.remove(key))
    }

    /// Removes every entry (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Dictionary.clear", |m| m.clear());
    }

    /// Looks up `key` (read API — the indexer-get analog).
    #[track_caller]
    pub fn get(&self, key: &K) -> Option<V> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Dictionary.get", |m| m.get(key).cloned())
    }

    /// Returns `true` if `key` is present (read API — Fig. 1, line 5).
    #[track_caller]
    pub fn contains_key(&self, key: &K) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Dictionary.contains_key", |m| m.contains_key(key))
    }

    /// Number of entries (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "Dictionary.len", |m| m.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Dictionary.is_empty", |m| m.is_empty())
    }

    /// Snapshot of the keys (read API).
    #[track_caller]
    pub fn keys(&self) -> Vec<K> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Dictionary.keys", |m| m.keys().cloned().collect())
    }

    /// Snapshot of the values (read API).
    #[track_caller]
    pub fn values(&self) -> Vec<V> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Dictionary.values", |m| m.values().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    fn rt() -> std::sync::Arc<Runtime> {
        Runtime::noop(TsvdConfig::for_testing())
    }

    #[test]
    fn add_get_remove() {
        let d: Dictionary<u32, &str> = Dictionary::new(&rt());
        assert!(d.add(1, "one"));
        assert!(!d.add(1, "uno"), "add must not overwrite");
        assert_eq!(d.get(&1), Some("one"));
        d.set(1, "uno");
        assert_eq!(d.get(&1), Some("uno"));
        assert_eq!(d.remove(&1), Some("uno"));
        assert_eq!(d.get(&1), None);
    }

    #[test]
    fn len_and_clear() {
        let d: Dictionary<u32, u32> = Dictionary::new(&rt());
        assert!(d.is_empty());
        for i in 0..10 {
            d.add(i, i * i);
        }
        assert_eq!(d.len(), 10);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn keys_and_values_snapshot() {
        let d: Dictionary<u32, u32> = Dictionary::new(&rt());
        d.add(1, 10);
        d.add(2, 20);
        let mut keys = d.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
        let mut values = d.values();
        values.sort_unstable();
        assert_eq!(values, vec![10, 20]);
    }

    #[test]
    fn handle_clone_shares_storage() {
        let d: Dictionary<u32, u32> = Dictionary::new(&rt());
        let d2 = d.clone();
        d.add(7, 7);
        assert_eq!(d2.get(&7), Some(7));
        assert_eq!(d.obj_id(), d2.obj_id());
    }

    #[test]
    fn every_call_reports_to_runtime() {
        let rt = rt();
        let d: Dictionary<u32, u32> = Dictionary::new(&rt);
        d.add(1, 1);
        d.get(&1);
        d.contains_key(&1);
        d.len();
        assert_eq!(rt.stats().on_calls(), 4);
    }

    #[test]
    fn unmonitored_dictionary_reports_nothing() {
        let d: Dictionary<u32, u32> = Dictionary::unmonitored();
        d.add(1, 1);
        assert_eq!(d.get(&1), Some(1));
    }

    #[test]
    fn sites_are_caller_locations() {
        let rt = rt();
        let d: Dictionary<u32, u32> = Dictionary::new(&rt);
        d.add(1, 1);
        let cov = rt.stats().coverage();
        assert_eq!(cov.len(), 1);
        assert!(
            cov[0].0.data().file.ends_with("dictionary.rs"),
            "site must point at this test file's call, got {}",
            cov[0].0
        );
    }
}
