//! `MultiMap<K, V>`: instrumented one-to-many map (the .NET
//! `NameValueCollection` / `Lookup` analog).

use std::collections::HashMap;
use std::hash::Hash;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented key → many-values map with a reads-share/
    /// writes-exclusive thread-safety contract.
    MultiMap<K, V> wraps HashMap<K, Vec<V>>
}

impl<K: Eq + Hash + Clone, V: Clone + PartialEq> MultiMap<K, V> {
    /// Appends `value` under `key` (write API).
    #[track_caller]
    pub fn add(&self, key: K, value: V) {
        let site = tsvd_core::site!();
        self.inner.write(site, "MultiMap.add", |m| {
            m.entry(key).or_default().push(value)
        });
    }

    /// Removes one occurrence of `value` under `key`; returns whether it
    /// was present (write API).
    #[track_caller]
    pub fn remove_value(&self, key: &K, value: &V) -> bool {
        let site = tsvd_core::site!();
        self.inner.write(site, "MultiMap.remove_value", |m| {
            let Some(values) = m.get_mut(key) else {
                return false;
            };
            let Some(idx) = values.iter().position(|v| v == value) else {
                return false;
            };
            values.remove(idx);
            if values.is_empty() {
                m.remove(key);
            }
            true
        })
    }

    /// Removes `key` and all its values (write API).
    #[track_caller]
    pub fn remove_key(&self, key: &K) -> Vec<V> {
        let site = tsvd_core::site!();
        self.inner.write(site, "MultiMap.remove_key", |m| {
            m.remove(key).unwrap_or_default()
        })
    }

    /// Removes everything (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "MultiMap.clear", |m| m.clear());
    }

    /// Snapshot of the values under `key` (read API).
    #[track_caller]
    pub fn get(&self, key: &K) -> Vec<V> {
        let site = tsvd_core::site!();
        self.inner.read(site, "MultiMap.get", |m| {
            m.get(key).cloned().unwrap_or_default()
        })
    }

    /// Returns `true` if `key` has any values (read API).
    #[track_caller]
    pub fn contains_key(&self, key: &K) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "MultiMap.contains_key", |m| m.contains_key(key))
    }

    /// Number of keys (read API).
    #[track_caller]
    pub fn key_count(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "MultiMap.key_count", |m| m.len())
    }

    /// Total number of values across all keys (read API).
    #[track_caller]
    pub fn value_count(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "MultiMap.value_count", |m| {
            m.values().map(Vec::len).sum()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    fn rt() -> std::sync::Arc<Runtime> {
        Runtime::noop(TsvdConfig::for_testing())
    }

    #[test]
    fn add_and_get_multiple() {
        let m: MultiMap<&str, u32> = MultiMap::new(&rt());
        m.add("a", 1);
        m.add("a", 2);
        m.add("b", 3);
        assert_eq!(m.get(&"a"), vec![1, 2]);
        assert_eq!(m.key_count(), 2);
        assert_eq!(m.value_count(), 3);
    }

    #[test]
    fn remove_value_cleans_empty_keys() {
        let m: MultiMap<&str, u32> = MultiMap::new(&rt());
        m.add("a", 1);
        assert!(m.remove_value(&"a", &1));
        assert!(!m.remove_value(&"a", &1));
        assert!(!m.contains_key(&"a"));
    }

    #[test]
    fn remove_key_returns_values() {
        let m: MultiMap<&str, u32> = MultiMap::new(&rt());
        m.add("a", 1);
        m.add("a", 2);
        assert_eq!(m.remove_key(&"a"), vec![1, 2]);
        assert_eq!(m.remove_key(&"a"), Vec::<u32>::new());
        m.add("b", 9);
        m.clear();
        assert_eq!(m.key_count(), 0);
    }
}
