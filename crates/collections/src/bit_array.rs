//! `BitArray`: instrumented fixed-size bit vector (the .NET `BitArray`
//! analog).

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented bit vector with a reads-share/writes-exclusive
    /// thread-safety contract.
    BitArray<> wraps Vec<u64>
}

const WORD: usize = 64;

impl BitArray {
    /// Grows the array so it can hold at least `bits` bits (write API).
    #[track_caller]
    pub fn resize(&self, bits: usize) {
        let site = tsvd_core::site!();
        self.inner.write(site, "BitArray.resize", |v| {
            v.resize(bits.div_ceil(WORD), 0);
        });
    }

    /// Sets bit `index` to `value` (write API). Grows on demand.
    #[track_caller]
    pub fn set(&self, index: usize, value: bool) {
        let site = tsvd_core::site!();
        self.inner.write(site, "BitArray.set", |v| {
            let word = index / WORD;
            if word >= v.len() {
                v.resize(word + 1, 0);
            }
            let mask = 1u64 << (index % WORD);
            if value {
                v[word] |= mask;
            } else {
                v[word] &= !mask;
            }
        });
    }

    /// Flips bit `index` (write API). Grows on demand.
    #[track_caller]
    pub fn flip(&self, index: usize) {
        let site = tsvd_core::site!();
        self.inner.write(site, "BitArray.flip", |v| {
            let word = index / WORD;
            if word >= v.len() {
                v.resize(word + 1, 0);
            }
            v[word] ^= 1u64 << (index % WORD);
        });
    }

    /// Clears all bits (write API).
    #[track_caller]
    pub fn clear_all(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "BitArray.clear_all", |v| {
            v.iter_mut().for_each(|w| *w = 0)
        });
    }

    /// Reads bit `index`; out-of-range bits read as `false` (read API).
    #[track_caller]
    pub fn get(&self, index: usize) -> bool {
        let site = tsvd_core::site!();
        self.inner.read(site, "BitArray.get", |v| {
            v.get(index / WORD)
                .is_some_and(|w| w & (1u64 << (index % WORD)) != 0)
        })
    }

    /// Number of set bits (read API).
    #[track_caller]
    pub fn count_ones(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "BitArray.count_ones", |v| {
            v.iter().map(|w| w.count_ones() as usize).sum()
        })
    }

    /// Capacity in bits (read API).
    #[track_caller]
    pub fn capacity(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "BitArray.capacity", |v| v.len() * WORD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    fn rt() -> std::sync::Arc<Runtime> {
        Runtime::noop(TsvdConfig::for_testing())
    }

    #[test]
    fn set_get_flip() {
        let b = BitArray::new(&rt());
        b.set(5, true);
        assert!(b.get(5));
        assert!(!b.get(4));
        b.flip(5);
        assert!(!b.get(5));
        b.flip(100);
        assert!(b.get(100));
    }

    #[test]
    fn count_and_clear() {
        let b = BitArray::new(&rt());
        for i in [1usize, 63, 64, 200] {
            b.set(i, true);
        }
        assert_eq!(b.count_ones(), 4);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn out_of_range_reads_false() {
        let b = BitArray::new(&rt());
        assert!(!b.get(10_000));
    }

    #[test]
    fn resize_grows_capacity() {
        let b = BitArray::new(&rt());
        b.resize(130);
        assert!(b.capacity() >= 130);
    }
}
