//! `LinkedDeque<T>`: instrumented double-ended queue (the `LinkedList<T>`
//! analog).

use std::collections::VecDeque;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented double-ended queue with a reads-share/
    /// writes-exclusive thread-safety contract.
    LinkedDeque<T> wraps VecDeque<T>
}

impl<T: Clone> LinkedDeque<T> {
    /// Appends at the front (write API).
    #[track_caller]
    pub fn push_front(&self, value: T) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "LinkedDeque.push_front", |d| d.push_front(value));
    }

    /// Appends at the back (write API).
    #[track_caller]
    pub fn push_back(&self, value: T) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "LinkedDeque.push_back", |d| d.push_back(value));
    }

    /// Removes from the front (write API).
    #[track_caller]
    pub fn pop_front(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "LinkedDeque.pop_front", |d| d.pop_front())
    }

    /// Removes from the back (write API).
    #[track_caller]
    pub fn pop_back(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "LinkedDeque.pop_back", |d| d.pop_back())
    }

    /// Removes every element (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "LinkedDeque.clear", |d| d.clear());
    }

    /// Front element (read API).
    #[track_caller]
    pub fn front(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "LinkedDeque.front", |d| d.front().cloned())
    }

    /// Back element (read API).
    #[track_caller]
    pub fn back(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "LinkedDeque.back", |d| d.back().cloned())
    }

    /// Number of elements (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "LinkedDeque.len", |d| d.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "LinkedDeque.is_empty", |d| d.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn both_ends_work() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let d: LinkedDeque<u32> = LinkedDeque::new(&rt);
        d.push_back(2);
        d.push_front(1);
        d.push_back(3);
        assert_eq!(d.front(), Some(1));
        assert_eq!(d.back(), Some(3));
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_back(), Some(3));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let d: LinkedDeque<u32> = LinkedDeque::new(&rt);
        d.push_back(1);
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.pop_front(), None);
    }
}
