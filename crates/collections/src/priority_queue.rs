//! `PriorityQueue<T>`: instrumented max-heap (the .NET `PriorityQueue`
//! analog).

use std::collections::BinaryHeap;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented max-heap with a reads-share/writes-exclusive
    /// thread-safety contract.
    PriorityQueue<T> wraps BinaryHeap<T>
}

impl<T: Ord + Clone> PriorityQueue<T> {
    /// Inserts `value` (write API).
    #[track_caller]
    pub fn push(&self, value: T) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "PriorityQueue.push", |h| h.push(value));
    }

    /// Removes and returns the largest element (write API).
    #[track_caller]
    pub fn pop(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner.write(site, "PriorityQueue.pop", |h| h.pop())
    }

    /// Removes every element (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "PriorityQueue.clear", |h| h.clear());
    }

    /// Returns the largest element without removing it (read API).
    #[track_caller]
    pub fn peek(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "PriorityQueue.peek", |h| h.peek().cloned())
    }

    /// Number of elements (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "PriorityQueue.len", |h| h.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "PriorityQueue.is_empty", |h| h.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn max_heap_order() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let q: PriorityQueue<u32> = PriorityQueue::new(&rt);
        q.push(3);
        q.push(9);
        q.push(1);
        assert_eq!(q.peek(), Some(9));
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_and_len() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let q: PriorityQueue<u32> = PriorityQueue::new(&rt);
        q.push(1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
