//! `List<T>`: the analog of .NET's `List<T>` — second most common bug home
//! (37 % of Table 1), including the production-incident concurrent-sort.

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented growable array with a reads-share/writes-exclusive
    /// thread-safety contract.
    List<T> wraps Vec<T>
}

impl<T: Clone> List<T> {
    /// Appends `value` (write API — Fig. 7's running example).
    #[track_caller]
    pub fn add(&self, value: T) {
        let site = tsvd_core::site!();
        self.inner.write(site, "List.add", |v| v.push(value));
    }

    /// Inserts `value` at `index` (write API).
    ///
    /// # Panics
    ///
    /// Panics if `index > len`, matching `Vec::insert`.
    #[track_caller]
    pub fn insert(&self, index: usize, value: T) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "List.insert", |v| v.insert(index, value));
    }

    /// Removes and returns the element at `index`, or `None` if out of
    /// bounds (write API).
    #[track_caller]
    pub fn remove_at(&self, index: usize) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner.write(site, "List.remove_at", |v| {
            (index < v.len()).then(|| v.remove(index))
        })
    }

    /// Overwrites the element at `index`; returns `false` if out of bounds
    /// (write API).
    #[track_caller]
    pub fn set(&self, index: usize, value: T) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "List.set", |v| match v.get_mut(index) {
                Some(slot) => {
                    *slot = value;
                    true
                }
                None => false,
            })
    }

    /// Removes every element (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "List.clear", |v| v.clear());
    }

    /// Returns the element at `index` (read API).
    #[track_caller]
    pub fn get(&self, index: usize) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner.read(site, "List.get", |v| v.get(index).cloned())
    }

    /// Number of elements (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "List.len", |v| v.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner.read(site, "List.is_empty", |v| v.is_empty())
    }

    /// Snapshot of all elements (read API).
    #[track_caller]
    pub fn to_vec(&self) -> Vec<T> {
        let site = tsvd_core::site!();
        self.inner.read(site, "List.to_vec", |v| v.clone())
    }
}

impl<T: Clone + Ord> List<T> {
    /// Sorts the list in place (write API) — the operation behind the
    /// paper's §5.6 production incident, where two threads sorting one
    /// list concurrently produced an undetermined order and took a service
    /// down for hours.
    #[track_caller]
    pub fn sort(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "List.sort", |v| v.sort());
    }

    /// Returns `true` if `value` is present (read API).
    #[track_caller]
    pub fn contains(&self, value: &T) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "List.contains", |v| v.contains(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    fn rt() -> std::sync::Arc<Runtime> {
        Runtime::noop(TsvdConfig::for_testing())
    }

    #[test]
    fn add_get_set_remove() {
        let l: List<u32> = List::new(&rt());
        l.add(1);
        l.add(2);
        assert_eq!(l.get(0), Some(1));
        assert!(l.set(0, 9));
        assert!(!l.set(5, 9));
        assert_eq!(l.remove_at(0), Some(9));
        assert_eq!(l.remove_at(5), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn insert_and_to_vec() {
        let l: List<u32> = List::new(&rt());
        l.add(1);
        l.add(3);
        l.insert(1, 2);
        assert_eq!(l.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn sort_and_contains() {
        let l: List<u32> = List::new(&rt());
        for x in [3, 1, 2] {
            l.add(x);
        }
        l.sort();
        assert_eq!(l.to_vec(), vec![1, 2, 3]);
        assert!(l.contains(&2));
        assert!(!l.contains(&9));
    }

    #[test]
    fn clear_empties() {
        let l: List<u32> = List::new(&rt());
        l.add(1);
        l.clear();
        assert!(l.is_empty());
    }

    #[test]
    fn calls_are_reported() {
        let rt = rt();
        let l: List<u32> = List::new(&rt);
        l.add(1);
        l.len();
        assert_eq!(rt.stats().on_calls(), 2);
    }
}
