//! `Cache<K, V>`: an instrumented memoization table.
//!
//! Models the compute-and-cache pattern of Fig. 3 (`getSqrt`): check the
//! cache, compute on miss, store the result. The store is a write on a
//! thread-unsafe table, so two concurrent misses on *different* keys are
//! already a TSV — the misconception the paper's intro calls out.

use std::collections::HashMap;
use std::hash::Hash;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented bounded memoization cache with a reads-share/
    /// writes-exclusive thread-safety contract.
    Cache<K, V> wraps CacheStorage<K, V>
}

/// Backing storage: map plus insertion order for FIFO eviction.
pub struct CacheStorage<K, V> {
    map: HashMap<K, V>,
    order: std::collections::VecDeque<K>,
    capacity: usize,
}

impl<K, V> Default for CacheStorage<K, V> {
    fn default() -> Self {
        CacheStorage {
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity: usize::MAX,
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Cache<K, V> {
    /// Bounds the cache to `capacity` entries with FIFO eviction
    /// (write API).
    #[track_caller]
    pub fn set_capacity(&self, capacity: usize) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Cache.set_capacity", |c| {
            c.capacity = capacity.max(1);
            while c.map.len() > c.capacity {
                if let Some(k) = c.order.pop_front() {
                    c.map.remove(&k);
                }
            }
        });
    }

    /// Looks up `key` (read API — the `ContainsKey`-then-fetch fast path).
    #[track_caller]
    pub fn get(&self, key: &K) -> Option<V> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Cache.get", |c| c.map.get(key).cloned())
    }

    /// Returns `true` if `key` is cached (read API).
    #[track_caller]
    pub fn contains_key(&self, key: &K) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Cache.contains_key", |c| c.map.contains_key(key))
    }

    /// Stores `key → value`, evicting FIFO if over capacity (write API —
    /// the `dict.Add(x, s)` of Fig. 3, line 9).
    #[track_caller]
    pub fn put(&self, key: K, value: V) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Cache.put", |c| {
            if c.map.insert(key.clone(), value).is_none() {
                c.order.push_back(key);
            }
            while c.map.len() > c.capacity {
                if let Some(k) = c.order.pop_front() {
                    c.map.remove(&k);
                }
            }
        });
    }

    /// Drops `key` from the cache (write API).
    #[track_caller]
    pub fn invalidate(&self, key: &K) -> bool {
        let site = tsvd_core::site!();
        self.inner.write(site, "Cache.invalidate", |c| {
            c.order.retain(|k| k != key);
            c.map.remove(key).is_some()
        })
    }

    /// Drops everything (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Cache.clear", |c| {
            c.map.clear();
            c.order.clear();
        });
    }

    /// Number of cached entries (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "Cache.len", |c| c.map.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "Cache.is_empty", |c| c.map.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    fn rt() -> std::sync::Arc<Runtime> {
        Runtime::noop(TsvdConfig::for_testing())
    }

    #[test]
    fn put_get_invalidate() {
        let c: Cache<u32, &str> = Cache::new(&rt());
        c.put(1, "one");
        assert!(c.contains_key(&1));
        assert_eq!(c.get(&1), Some("one"));
        assert!(c.invalidate(&1));
        assert!(!c.invalidate(&1));
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let c: Cache<u32, u32> = Cache::new(&rt());
        c.set_capacity(2);
        c.put(1, 1);
        c.put(2, 2);
        c.put(3, 3);
        assert_eq!(c.len(), 2);
        assert!(!c.contains_key(&1), "oldest entry evicted first");
        assert!(c.contains_key(&2));
        assert!(c.contains_key(&3));
    }

    #[test]
    fn overwrite_does_not_duplicate_order() {
        let c: Cache<u32, u32> = Cache::new(&rt());
        c.set_capacity(2);
        c.put(1, 1);
        c.put(1, 10);
        c.put(2, 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(10));
    }

    #[test]
    fn clear_empties() {
        let c: Cache<u32, u32> = Cache::new(&rt());
        c.put(1, 1);
        c.clear();
        assert!(c.is_empty());
    }
}
