//! `HashSet<T>`: instrumented unordered set.

use std::hash::Hash;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented hash set with a reads-share/writes-exclusive
    /// thread-safety contract.
    HashSet<T> wraps std::collections::HashSet<T>
}

impl<T: Eq + Hash + Clone> HashSet<T> {
    /// Inserts `value`; returns `false` if already present (write API).
    #[track_caller]
    pub fn add(&self, value: T) -> bool {
        let site = tsvd_core::site!();
        self.inner.write(site, "HashSet.add", |s| s.insert(value))
    }

    /// Removes `value`; returns whether it was present (write API).
    #[track_caller]
    pub fn remove(&self, value: &T) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "HashSet.remove", |s| s.remove(value))
    }

    /// Removes every element (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "HashSet.clear", |s| s.clear());
    }

    /// Returns `true` if `value` is present (read API).
    #[track_caller]
    pub fn contains(&self, value: &T) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "HashSet.contains", |s| s.contains(value))
    }

    /// Number of elements (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "HashSet.len", |s| s.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner.read(site, "HashSet.is_empty", |s| s.is_empty())
    }

    /// Snapshot of the elements (read API).
    #[track_caller]
    pub fn to_vec(&self) -> Vec<T> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "HashSet.to_vec", |s| s.iter().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn add_contains_remove() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let s: HashSet<u32> = HashSet::new(&rt);
        assert!(s.add(1));
        assert!(!s.add(1));
        assert!(s.contains(&1));
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.is_empty());
    }

    #[test]
    fn clear_and_snapshot() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let s: HashSet<u32> = HashSet::new(&rt);
        s.add(1);
        s.add(2);
        let mut v = s.to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![1, 2]);
        s.clear();
        assert_eq!(s.len(), 0);
    }
}
