//! `SortedSet<T>`: instrumented ordered set (the .NET `SortedSet` analog).

use std::collections::BTreeSet;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented ordered set with a reads-share/writes-exclusive
    /// thread-safety contract.
    SortedSet<T> wraps BTreeSet<T>
}

impl<T: Ord + Clone> SortedSet<T> {
    /// Inserts `value`; returns `false` if already present (write API).
    #[track_caller]
    pub fn add(&self, value: T) -> bool {
        let site = tsvd_core::site!();
        self.inner.write(site, "SortedSet.add", |s| s.insert(value))
    }

    /// Removes `value`; returns whether it was present (write API).
    #[track_caller]
    pub fn remove(&self, value: &T) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "SortedSet.remove", |s| s.remove(value))
    }

    /// Removes every element (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "SortedSet.clear", |s| s.clear());
    }

    /// Returns `true` if `value` is present (read API).
    #[track_caller]
    pub fn contains(&self, value: &T) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedSet.contains", |s| s.contains(value))
    }

    /// Smallest element (read API).
    #[track_caller]
    pub fn min(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedSet.min", |s| s.iter().next().cloned())
    }

    /// Largest element (read API).
    #[track_caller]
    pub fn max(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedSet.max", |s| s.iter().next_back().cloned())
    }

    /// Number of elements (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "SortedSet.len", |s| s.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedSet.is_empty", |s| s.is_empty())
    }

    /// Ascending snapshot (read API).
    #[track_caller]
    pub fn to_vec(&self) -> Vec<T> {
        let site = tsvd_core::site!();
        self.inner
            .read(site, "SortedSet.to_vec", |s| s.iter().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    fn rt() -> std::sync::Arc<Runtime> {
        Runtime::noop(TsvdConfig::for_testing())
    }

    #[test]
    fn ordered_semantics() {
        let s: SortedSet<u32> = SortedSet::new(&rt());
        assert!(s.add(5));
        assert!(s.add(1));
        assert!(!s.add(5));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(5));
        assert_eq!(s.to_vec(), vec![1, 5]);
    }

    #[test]
    fn remove_and_clear() {
        let s: SortedSet<u32> = SortedSet::new(&rt());
        s.add(1);
        s.add(2);
        assert!(s.remove(&1));
        assert!(!s.remove(&1));
        assert!(s.contains(&2));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
