//! `Queue<T>`: instrumented FIFO queue.

use std::collections::VecDeque;

use crate::instrumented::collection_handle;

collection_handle! {
    /// An instrumented FIFO queue with a reads-share/writes-exclusive
    /// thread-safety contract.
    Queue<T> wraps VecDeque<T>
}

impl<T: Clone> Queue<T> {
    /// Appends `value` at the back (write API).
    #[track_caller]
    pub fn enqueue(&self, value: T) {
        let site = tsvd_core::site!();
        self.inner
            .write(site, "Queue.enqueue", |q| q.push_back(value));
    }

    /// Removes and returns the front element (write API).
    #[track_caller]
    pub fn dequeue(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner.write(site, "Queue.dequeue", |q| q.pop_front())
    }

    /// Removes every element (write API).
    #[track_caller]
    pub fn clear(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Queue.clear", |q| q.clear());
    }

    /// Returns the front element without removing it (read API).
    #[track_caller]
    pub fn peek(&self) -> Option<T> {
        let site = tsvd_core::site!();
        self.inner.read(site, "Queue.peek", |q| q.front().cloned())
    }

    /// Number of elements (read API).
    #[track_caller]
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "Queue.len", |q| q.len())
    }

    /// Returns `true` if empty (read API).
    #[track_caller]
    pub fn is_empty(&self) -> bool {
        let site = tsvd_core::site!();
        self.inner.read(site, "Queue.is_empty", |q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn fifo_order() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let q: Queue<u32> = Queue::new(&rt);
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.peek(), Some(1));
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn clear_and_len() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let q: Queue<u32> = Queue::new(&rt);
        q.enqueue(1);
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
