//! Concurrency stress tests: the collections stay memory-safe and
//! internally consistent even while their thread-safety contract is being
//! violated on purpose — the property that makes this reproduction sound
//! where the .NET originals corrupt silently.

use std::sync::Arc;

use tsvd_collections::{Dictionary, List, Queue, Stack, StringBuilder};
use tsvd_core::{Runtime, TsvdConfig};

fn rt() -> Arc<Runtime> {
    // A detecting runtime, so the stress also exercises the full OnCall
    // path (near-miss tracking, trap checks) under contention.
    let mut cfg = TsvdConfig::paper().scaled(0.005);
    cfg.max_delay_per_run_ns = cfg.delay_ns * 20; // Keep the test fast.
    Runtime::tsvd(cfg)
}

#[test]
fn dictionary_survives_contract_violations() {
    let rt = rt();
    let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let d = dict.clone();
            scope.spawn(move || {
                for i in 0..500u64 {
                    let k = (w * 1_000) + (i % 32);
                    d.set(k, i);
                    let _ = d.get(&k);
                    if i % 16 == 0 {
                        d.remove(&k);
                    }
                }
            });
        }
    });
    // Internal storage stayed coherent: every surviving key belongs to a
    // writer's keyspace and every read sees a value that was written.
    for k in dict.keys() {
        assert!(k % 1_000 < 32, "impossible key {k}");
    }
    assert!(dict.len() <= 4 * 32);
}

#[test]
fn list_length_is_exact_under_append_storm() {
    let rt = rt();
    let list: List<u64> = List::new(&rt);
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let l = list.clone();
            scope.spawn(move || {
                for i in 0..250 {
                    l.add(w << 32 | i);
                }
            });
        }
    });
    // The serialization layer guarantees no appends are lost even though
    // the contract was violated (which .NET's List would not guarantee).
    assert_eq!(list.len(), 1_000);
    let mut seen = std::collections::HashSet::new();
    for v in list.to_vec() {
        assert!(seen.insert(v), "duplicate element {v}");
    }
}

#[test]
fn queue_conserves_items_under_producer_consumer_storm() {
    let rt = rt();
    let queue: Queue<u64> = Queue::new(&rt);
    let produced = 4 * 200u64;
    let drained = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..2u64 {
            let q = queue.clone();
            scope.spawn(move || {
                for i in 0..400 {
                    q.enqueue(w << 32 | i);
                }
            });
        }
        for _ in 0..2 {
            let q = queue.clone();
            let drained = &drained;
            scope.spawn(move || {
                let mut idle = 0;
                while idle < 10_000 {
                    match q.dequeue() {
                        Some(_) => {
                            drained.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            idle = 0;
                        }
                        None => idle += 1,
                    }
                }
            });
        }
    });
    let left = queue.len() as u64;
    assert_eq!(
        drained.load(std::sync::atomic::Ordering::Relaxed) + left,
        produced,
        "items must be conserved"
    );
}

#[test]
fn stack_and_string_builder_survive_mixed_storm() {
    let rt = rt();
    let stack: Stack<u64> = Stack::new(&rt);
    let log = StringBuilder::new(&rt);
    std::thread::scope(|scope| {
        for w in 0..3u64 {
            let s = stack.clone();
            let l = log.clone();
            scope.spawn(move || {
                for i in 0..300u64 {
                    if i % 3 == 0 {
                        s.push(w << 32 | i);
                    } else {
                        let _ = s.pop();
                    }
                    if i % 50 == 0 {
                        l.append("x");
                    }
                }
            });
        }
    });
    assert!(stack.len() <= 300);
    assert_eq!(log.len(), log.to_string().len());
    // The violations were physically witnessed (single CPU machines may
    // occasionally serialize perfectly, so only assert when caught).
    if rt.reports().unique_bugs() > 0 {
        assert!(rt.reports().total_occurrences() >= rt.reports().unique_bugs());
    }
}

#[test]
fn detection_under_stress_reports_only_real_conflicts() {
    let rt = rt();
    let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
    std::thread::scope(|scope| {
        for w in 0..3u64 {
            let d = dict.clone();
            scope.spawn(move || {
                for i in 0..300u64 {
                    d.set(w, i);
                    let _ = d.get(&w);
                }
            });
        }
    });
    for v in rt.reports().violations() {
        assert_ne!(v.trapped.context, v.hitter.context);
        assert!(v.trapped.kind.conflicts_with(v.hitter.kind));
        assert!(v.trapped.op_name.starts_with("Dictionary."));
    }
}
