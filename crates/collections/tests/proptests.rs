//! Model-based property tests: every instrumented collection behaves
//! exactly like its std model under arbitrary single-threaded operation
//! sequences (the instrumentation must be semantically invisible).

// Requires the real `proptest` crate, which the offline build cannot
// fetch; run with `--features proptests` in an environment that has it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use tsvd_collections::{BitArray, Dictionary, List, Queue, Stack};
use tsvd_core::{Runtime, TsvdConfig};

fn rt() -> std::sync::Arc<Runtime> {
    Runtime::noop(TsvdConfig::for_testing())
}

#[derive(Debug, Clone)]
enum DictOp {
    Add(u8, u16),
    Set(u8, u16),
    Remove(u8),
    Get(u8),
    Contains(u8),
    Clear,
}

fn dict_op() -> impl Strategy<Value = DictOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| DictOp::Add(k, v)),
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| DictOp::Set(k, v)),
        any::<u8>().prop_map(DictOp::Remove),
        any::<u8>().prop_map(DictOp::Get),
        any::<u8>().prop_map(DictOp::Contains),
        Just(DictOp::Clear),
    ]
}

proptest! {
    #[test]
    fn dictionary_matches_hashmap(ops in proptest::collection::vec(dict_op(), 0..120)) {
        let dict: Dictionary<u8, u16> = Dictionary::new(&rt());
        let mut model = std::collections::HashMap::new();
        for op in ops {
            match op {
                DictOp::Add(k, v) => {
                    let expect = !model.contains_key(&k);
                    if expect {
                        model.insert(k, v);
                    }
                    prop_assert_eq!(dict.add(k, v), expect);
                }
                DictOp::Set(k, v) => {
                    model.insert(k, v);
                    dict.set(k, v);
                }
                DictOp::Remove(k) => {
                    prop_assert_eq!(dict.remove(&k), model.remove(&k));
                }
                DictOp::Get(k) => {
                    prop_assert_eq!(dict.get(&k), model.get(&k).copied());
                }
                DictOp::Contains(k) => {
                    prop_assert_eq!(dict.contains_key(&k), model.contains_key(&k));
                }
                DictOp::Clear => {
                    model.clear();
                    dict.clear();
                }
            }
            prop_assert_eq!(dict.len(), model.len());
        }
        prop_assert!(!dict.is_corrupted(), "single-threaded use is clean");
    }

    #[test]
    fn list_matches_vec(ops in proptest::collection::vec((0u8..6, any::<u16>(), any::<u8>()), 0..120)) {
        let list: List<u16> = List::new(&rt());
        let mut model: Vec<u16> = Vec::new();
        for (op, v, idx) in ops {
            let i = if model.is_empty() { 0 } else { usize::from(idx) % (model.len() + 1) };
            match op {
                0 => {
                    list.add(v);
                    model.push(v);
                }
                1 => {
                    list.insert(i, v);
                    model.insert(i, v);
                }
                2 => {
                    let expect = (i < model.len()).then(|| model.remove(i));
                    prop_assert_eq!(list.remove_at(i), expect);
                }
                3 => {
                    let expect = i < model.len();
                    if expect {
                        model[i] = v;
                    }
                    prop_assert_eq!(list.set(i, v), expect);
                }
                4 => {
                    list.sort();
                    model.sort();
                }
                _ => {
                    prop_assert_eq!(list.get(i), model.get(i).copied());
                }
            }
            prop_assert_eq!(list.len(), model.len());
        }
        prop_assert_eq!(list.to_vec(), model);
    }

    #[test]
    fn queue_matches_vecdeque(ops in proptest::collection::vec((0u8..3, any::<u16>()), 0..120)) {
        let queue: Queue<u16> = Queue::new(&rt());
        let mut model = std::collections::VecDeque::new();
        for (op, v) in ops {
            match op {
                0 => {
                    queue.enqueue(v);
                    model.push_back(v);
                }
                1 => {
                    prop_assert_eq!(queue.dequeue(), model.pop_front());
                }
                _ => {
                    prop_assert_eq!(queue.peek(), model.front().copied());
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
    }

    #[test]
    fn stack_matches_vec(ops in proptest::collection::vec((0u8..3, any::<u16>()), 0..120)) {
        let stack: Stack<u16> = Stack::new(&rt());
        let mut model: Vec<u16> = Vec::new();
        for (op, v) in ops {
            match op {
                0 => {
                    stack.push(v);
                    model.push(v);
                }
                1 => {
                    prop_assert_eq!(stack.pop(), model.pop());
                }
                _ => {
                    prop_assert_eq!(stack.peek(), model.last().copied());
                }
            }
            prop_assert_eq!(stack.len(), model.len());
        }
    }

    #[test]
    fn bit_array_matches_set_model(ops in proptest::collection::vec((0u8..3, 0usize..512), 0..150)) {
        let bits = BitArray::new(&rt());
        let mut model = std::collections::HashSet::new();
        for (op, i) in ops {
            match op {
                0 => {
                    bits.set(i, true);
                    model.insert(i);
                }
                1 => {
                    bits.set(i, false);
                    model.remove(&i);
                }
                _ => {
                    if model.contains(&i) {
                        model.remove(&i);
                    } else {
                        model.insert(i);
                    }
                    bits.flip(i);
                }
            }
            prop_assert_eq!(bits.count_ones(), model.len());
        }
        for i in 0..512 {
            prop_assert_eq!(bits.get(i), model.contains(&i));
        }
    }

    /// The API registry classifies every operation name the collections
    /// actually report, with the kind the collection actually uses.
    #[test]
    fn reported_ops_are_registered(k in any::<u8>(), v in any::<u16>()) {
        use tsvd_collections::api::classify;
        use tsvd_core::OpKind;
        let dict: Dictionary<u8, u16> = Dictionary::new(&rt());
        dict.add(k, v);
        dict.get(&k);
        prop_assert_eq!(classify("Dictionary.add"), Some(OpKind::Write));
        prop_assert_eq!(classify("Dictionary.get"), Some(OpKind::Read));
    }
}
