//! Test modules: the unit the harness schedules, instruments, and scores.

use std::sync::Arc;
use std::time::Duration;

use tsvd_core::Runtime;
use tsvd_tasks::Pool;

/// Everything a module body needs to run under detection.
pub struct ModuleCtx {
    /// The detection runtime all instrumented objects report to.
    pub runtime: Arc<Runtime>,
    /// The task pool (synchronization events flow to the runtime).
    pub pool: Arc<Pool>,
    /// One "beat" of scenario time, derived from the configured delay so
    /// workload timing scales with the detector's time constants.
    pub beat: Duration,
}

impl ModuleCtx {
    /// Builds a context for `runtime` with `threads` pool workers.
    pub fn new(runtime: Arc<Runtime>, threads: usize) -> ModuleCtx {
        let beat = Duration::from_nanos(runtime.config().beat_ns).max(Duration::from_micros(50));
        let pool = Arc::new(Pool::with_runtime(threads, runtime.clone()));
        ModuleCtx {
            runtime,
            pool,
            beat,
        }
    }

    /// Sleeps for `n` beats (scenario-relative time).
    pub fn sleep_beats(&self, n: u32) {
        std::thread::sleep(self.beat * n);
    }
}

/// Ground truth about a module's bug content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// No thread-safety violation is possible; any report is a false
    /// positive (and fails the evaluation).
    Clean,
    /// The module contains TSVs.
    Buggy {
        /// Distinct racy static-location pairs planted.
        pairs: usize,
        /// `true` if the racy operations recur within a run, so the bug is
        /// catchable in the run that discovers the near miss; `false` for
        /// single-shot points that need a trap-file-seeded second run.
        first_run_catchable: bool,
    },
}

impl Expectation {
    /// Planted racy pair count (0 for clean modules).
    pub fn planted_pairs(&self) -> usize {
        match *self {
            Expectation::Clean => 0,
            Expectation::Buggy { pairs, .. } => pairs,
        }
    }
}

/// A schedulable test module with ground-truth metadata.
///
/// Cloning is cheap (the body is shared behind an `Arc`), which lets the
/// harness move a copy onto a watched thread for deadline enforcement.
#[derive(Clone)]
pub struct Module {
    name: String,
    /// Nominal unit-test count (Table 1/4 statistics).
    tests: u32,
    expectation: Expectation,
    /// `true` if the module exercises task-based/async parallelism
    /// (Table 1: 70 % of bugs were in async code).
    uses_async: bool,
    /// The dominant instrumented data structure ("Dictionary", "List", ...).
    structure: &'static str,
    body: Arc<dyn Fn(&ModuleCtx) + Send + Sync>,
}

impl Module {
    /// Creates a module.
    pub fn new(
        name: impl Into<String>,
        tests: u32,
        expectation: Expectation,
        uses_async: bool,
        structure: &'static str,
        body: impl Fn(&ModuleCtx) + Send + Sync + 'static,
    ) -> Module {
        Module {
            name: name.into(),
            tests,
            expectation,
            uses_async,
            structure,
            body: Arc::new(body),
        }
    }

    /// Executes the module's tests under `ctx`.
    pub fn run(&self, ctx: &ModuleCtx) {
        (self.body)(ctx);
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Nominal unit-test count.
    pub fn tests(&self) -> u32 {
        self.tests
    }

    /// Ground truth.
    pub fn expectation(&self) -> Expectation {
        self.expectation
    }

    /// Whether the module uses task parallelism.
    pub fn uses_async(&self) -> bool {
        self.uses_async
    }

    /// Dominant instrumented structure.
    pub fn structure(&self) -> &'static str {
        self.structure
    }
}

impl std::fmt::Debug for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Module")
            .field("name", &self.name)
            .field("tests", &self.tests)
            .field("expectation", &self.expectation)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::TsvdConfig;

    #[test]
    fn ctx_beat_scales_with_config() {
        let rt = Runtime::noop(TsvdConfig::paper().scaled(0.02));
        let ctx = ModuleCtx::new(rt, 2);
        // 25 ms paper beat × 0.02 = 0.5 ms.
        assert_eq!(ctx.beat, Duration::from_micros(500));
    }

    #[test]
    fn module_runs_body() {
        let counter = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let c = counter.clone();
        let m = Module::new("m", 1, Expectation::Clean, false, "List", move |_| {
            c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt, 1);
        m.run(&ctx);
        m.run(&ctx);
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(m.expectation().planted_pairs(), 0);
    }

    #[test]
    fn expectation_pairs() {
        assert_eq!(Expectation::Clean.planted_pairs(), 0);
        assert_eq!(
            Expectation::Buggy {
                pairs: 3,
                first_run_catchable: true
            }
            .planted_pairs(),
            3
        );
    }
}
