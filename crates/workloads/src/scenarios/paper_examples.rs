//! The bugs the paper presents in code.

use tsvd_collections::{Cache, Dictionary, List};
use tsvd_tasks::parallel_for_each;

use crate::module::{Expectation, Module, ModuleCtx};
use crate::scenarios::{busy_work, pace, Filler};

/// Fig. 1: one thread `dict.Add(key1, v)`, another
/// `dict.ContainsKey(key2)`. Write-read on different keys of one
/// dictionary — the "different keys are safe" misconception.
pub fn dict_racy(iters: u32) -> Module {
    Module::new(
        "dict-racy",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let dict: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            let d1 = dict.clone();
            let rt1 = ctx.runtime.clone();
            let writer = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt1);
                for i in 0..u64::from(iters) {
                    filler.tick(i as u32);
                    d1.add(i, busy_work(1));
                    std::thread::sleep(p);
                }
            });
            let d2 = dict.clone();
            let rt2 = ctx.runtime.clone();
            let reader = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt2);
                for i in 0..u64::from(iters) {
                    filler.tick(i as u32);
                    d2.contains_key(&(1_000 + i));
                    std::thread::sleep(p);
                }
            });
            writer.wait();
            reader.wait();
        },
    )
}

/// Fig. 3/4: the `getSqrt` memoization cache. Each call checks the cache,
/// computes in a background task on a miss, and stores the result after the
/// await — so two concurrent calls race `Cache.put` against both
/// `Cache.put` and `Cache.contains_key`.
pub fn getsqrt_cache(iters: u32) -> Module {
    fn get_sqrt(ctx: &ModuleCtx, cache: &Cache<u64, u64>, x: u64) -> u64 {
        if cache.contains_key(&x) {
            return cache.get(&x).unwrap_or_default(); // Fetch from cache.
        }
        let p = pace(ctx);
        let t = ctx.pool.spawn_fast(move || {
            std::thread::sleep(p); // Background work.
            busy_work(2) ^ x
        });
        let s = t.join(); // Resume when done.
        cache.put(x, s); // Save to cache.
        s
    }

    Module::new(
        "getsqrt-cache",
        3,
        Expectation::Buggy {
            pairs: 2,
            first_run_catchable: true,
        },
        true,
        "Cache",
        move |ctx: &ModuleCtx| {
            let cache: Cache<u64, u64> = Cache::new(&ctx.runtime);
            for round in 0..iters {
                // Two logical requests race through getSqrt concurrently.
                let a = u64::from(round) * 2;
                let b = a + 1;
                let c1 = cache.clone();
                let c2 = cache.clone();
                let mc1 = ModuleCtx {
                    runtime: ctx.runtime.clone(),
                    pool: ctx.pool.clone(),
                    beat: ctx.beat,
                };
                let mc2 = ModuleCtx {
                    runtime: ctx.runtime.clone(),
                    pool: ctx.pool.clone(),
                    beat: ctx.beat,
                };
                let sqrt_a = ctx.pool.spawn(move || get_sqrt(&mc1, &c1, a));
                let sqrt_b = ctx.pool.spawn(move || get_sqrt(&mc2, &c2, b));
                let _ = sqrt_a.join() + sqrt_b.join(); // Blocks (Fig. 3 l.15–16).
            }
        },
    )
}

/// Fig. 10 (a): a device manager's listener creates one async task per
/// client message; each task writes `GlobalStatus[clientID] = s` — two
/// near-simultaneous messages corrupt the status dictionary.
pub fn device_manager(messages: u32) -> Module {
    Module::new(
        "device-manager",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let global_status: Dictionary<u32, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            let mut handles = Vec::new();
            for msg in 0..messages {
                let status = global_status.clone();
                let rt = ctx.runtime.clone();
                handles.push(ctx.pool.spawn(move || {
                    // Message parsing/bookkeeping before the status update.
                    let filler = Filler::new(&rt);
                    filler.tick(msg);
                    filler.tick(msg + 1);
                    std::thread::sleep(p);
                    status.set(msg % 4, u64::from(msg)); // GlobalStatus[clientID] = s.
                }));
                // The listener keeps listening between messages.
                std::thread::sleep(p / 2);
            }
            for h in handles {
                h.wait();
            }
        },
    )
}

/// Fig. 10 (b): network-validation startup verifies every host's
/// configuration with `Parallel.ForEach`, each iteration writing
/// `configureCache[host] = cl` — a concurrent-write TSV.
pub fn network_validation(hosts: u32) -> Module {
    Module::new(
        "network-validation",
        1,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let configure_cache: Dictionary<u32, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            let cache = configure_cache.clone();
            let rt = ctx.runtime.clone();
            parallel_for_each(&ctx.pool, 0..hosts, move |host| {
                let filler = Filler::new(&rt);
                filler.tick(host);
                filler.tick(host + 1);
                std::thread::sleep(p); // GetConfigLevel(host).
                cache.set(host, busy_work(1)); // configureCache[host] = cl.
            });
        },
    )
}

/// §5.6 production incident: two threads sorting one unprotected list at
/// the same time; the undetermined result propagated and took the service
/// down for hours.
pub fn list_sort_race(rounds: u32) -> Module {
    Module::new(
        "list-sort-race",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "List",
        move |ctx: &ModuleCtx| {
            let list: List<u64> = List::new(&ctx.runtime);
            for i in 0..16 {
                list.add(busy_work(i % 7));
            }
            let p = pace(ctx);
            let l1 = list.clone();
            let rt1 = ctx.runtime.clone();
            let sorter_a = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt1);
                for r in 0..rounds {
                    filler.tick(r);
                    l1.sort();
                    std::thread::sleep(p);
                }
            });
            let l2 = list.clone();
            let rt2 = ctx.runtime.clone();
            let sorter_b = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt2);
                for r in 0..rounds {
                    filler.tick(r);
                    l2.sort();
                    std::thread::sleep(p);
                }
            });
            sorter_a.wait();
            sorter_b.wait();
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    fn run_clean(m: &Module) {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt, 2);
        m.run(&ctx);
    }

    #[test]
    fn all_paper_examples_run_under_noop() {
        for m in [
            dict_racy(4),
            getsqrt_cache(2),
            device_manager(4),
            network_validation(4),
            list_sort_race(3),
        ] {
            run_clean(&m);
            assert!(m.expectation().planted_pairs() >= 1);
            assert!(m.uses_async());
        }
    }

    #[test]
    fn getsqrt_caches_results() {
        // Functional check: the cache ends up populated.
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt.clone(), 2);
        getsqrt_cache(2).run(&ctx);
        assert!(rt.stats().on_calls() > 0);
    }
}
