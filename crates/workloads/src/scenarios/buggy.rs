//! Generic planted-TSV patterns matching the Table 1 bug characteristics.

use tsvd_collections::{
    BitArray, Dictionary, HashSet, LinkedDeque, List, Queue, SortedList, Stack, StringBuilder,
};
use tsvd_tasks::TsvdMutex;

use crate::module::{Expectation, Module, ModuleCtx};
use crate::scenarios::{busy_work, pace, Filler};

/// N workers all executing the *same* `List.add` line — the
/// two-threads-at-one-location shape behind 34 % of the paper's bugs.
pub fn same_location(workers: u32, iters: u32) -> Module {
    Module::new(
        "same-location",
        1,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "List",
        move |ctx: &ModuleCtx| {
            let list: List<u64> = List::new(&ctx.runtime);
            let p = pace(ctx);
            let handles: Vec<_> = (0..workers.max(2))
                .map(|w| {
                    let l = list.clone();
                    let rt = ctx.runtime.clone();
                    ctx.pool.spawn(move || {
                        let filler = Filler::new(&rt);
                        for i in 0..iters {
                            filler.tick(i);
                            l.add(u64::from(w) << 32 | u64::from(i));
                            std::thread::sleep(p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
        },
    )
}

/// Many readers against one occasional writer: the read-write conflict
/// shape behind 48 % of the paper's bugs (often "locking writes but not
/// reads").
pub fn read_write(readers: u32, iters: u32) -> Module {
    Module::new(
        "read-write",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let dict: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            dict.set(1, 1);
            let p = pace(ctx);
            let mut handles = Vec::new();
            for _ in 0..readers.max(1) {
                let d = dict.clone();
                let rt = ctx.runtime.clone();
                handles.push(ctx.pool.spawn(move || {
                    let filler = Filler::new(&rt);
                    for i in 0..iters {
                        filler.tick(i);
                        let _ = d.get(&1);
                        std::thread::sleep(p);
                    }
                }));
            }
            let d = dict.clone();
            let rt = ctx.runtime.clone();
            handles.push(ctx.pool.spawn(move || {
                let filler = Filler::new(&rt);
                for i in 0..iters {
                    filler.tick(i);
                    d.set(1, u64::from(i)); // Writer skips the lock readers never had.
                    std::thread::sleep(p);
                }
            }));
            for h in handles {
                h.wait();
            }
        },
    )
}

/// Producer/consumer on a thread-unsafe queue: enqueue races dequeue.
pub fn queue_drain(items: u32) -> Module {
    Module::new(
        "queue-drain",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Queue",
        move |ctx: &ModuleCtx| {
            let queue: Queue<u64> = Queue::new(&ctx.runtime);
            let p = pace(ctx);
            let q1 = queue.clone();
            let rt1 = ctx.runtime.clone();
            let producer = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt1);
                for i in 0..items {
                    filler.tick(i);
                    q1.enqueue(u64::from(i));
                    std::thread::sleep(p);
                }
            });
            let q2 = queue.clone();
            let consumer = ctx.pool.spawn(move || {
                let mut drained = 0;
                let mut idle_rounds = 0;
                while drained < items && idle_rounds < 4 * items {
                    match q2.dequeue() {
                        Some(_) => drained += 1,
                        None => idle_rounds += 1,
                    }
                    std::thread::sleep(p);
                }
            });
            producer.wait();
            consumer.wait();
        },
    )
}

/// Two tasks appending to one log `StringBuilder`.
pub fn string_log(iters: u32) -> Module {
    Module::new(
        "string-log",
        1,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "StringBuilder",
        move |ctx: &ModuleCtx| {
            let log = StringBuilder::new(&ctx.runtime);
            let p = pace(ctx);
            let handles: Vec<_> = ["worker-a", "worker-b"]
                .into_iter()
                .map(|tag| {
                    let l = log.clone();
                    let rt = ctx.runtime.clone();
                    ctx.pool.spawn(move || {
                        let filler = Filler::new(&rt);
                        for i in 0..iters {
                            filler.tick(i);
                            l.append(tag);
                            let _ = busy_work(i % 3);
                            std::thread::sleep(p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
        },
    )
}

/// A hot loop over a *private* dictionary (pure instrumentation traffic)
/// plus a cold shared dictionary with a real race. Dynamic sampling burns
/// its delay budget on the hot path; static/trap-set approaches find the
/// cold bug.
pub fn hot_loop(hot_iters: u32, cold_iters: u32) -> Module {
    Module::new(
        "hot-loop",
        3,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let shared: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            let hot_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let s1 = shared.clone();
            let rt = ctx.runtime.clone();
            let done = hot_done.clone();
            let hot = ctx.pool.spawn(move || {
                let private: Dictionary<u64, u64> = Dictionary::new(&rt);
                for i in 0..hot_iters {
                    private.set(u64::from(i % 64), u64::from(i));
                    if i % 8 == 0 {
                        std::thread::sleep(p / 4);
                    }
                }
                for i in 0..cold_iters {
                    s1.set(7, u64::from(i)); // The cold, racy write.
                    std::thread::sleep(p);
                }
                done.store(true, std::sync::atomic::Ordering::Release);
            });
            // The cold worker is a background refresher: it keeps updating
            // the shared entry until the hot worker finishes, so the racy
            // writes genuinely overlap the hot worker's cold section.
            let s2 = shared.clone();
            let cold = ctx.pool.spawn(move || {
                let mut i = 0u64;
                while !hot_done.load(std::sync::atomic::Ordering::Acquire) && i < 10_000 {
                    s2.set(7, 1_000 + i);
                    std::thread::sleep(p * 2);
                    i += 1;
                }
            });
            hot.wait();
            cold.wait();
        },
    )
}

/// Both tasks take a lock for part of their work, then write an
/// *unprotected* list. The incidental lock edges make the unprotected
/// writes look happens-before ordered to a vector-clock analysis in many
/// schedules — the "spurious HB edge" way TSVD-HB loses bugs — while
/// TSVD's near-miss tracking is undistracted.
pub fn lock_then_unprotected(iters: u32) -> Module {
    Module::new(
        "lock-then-unprotected",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "List",
        move |ctx: &ModuleCtx| {
            let protected: std::sync::Arc<TsvdMutex<u64>> =
                std::sync::Arc::new(TsvdMutex::with_runtime(0, ctx.runtime.clone()));
            let unprotected: List<u64> = List::new(&ctx.runtime);
            let p = pace(ctx);
            let handles: Vec<_> = (0..2u64)
                .map(|w| {
                    let m = protected.clone();
                    let l = unprotected.clone();
                    let rt = ctx.runtime.clone();
                    ctx.pool.spawn(move || {
                        let filler = Filler::new(&rt);
                        for i in 0..iters {
                            filler.tick(i);
                            {
                                let mut g = m.lock();
                                *g += 1; // Correctly protected counter.
                            }
                            l.add(w << 32 | u64::from(i)); // Unprotected!
                            std::thread::sleep(p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
        },
    )
}

/// Workers register ids in a shared `HashSet` while a monitor polls
/// membership — an add/contains read-write race.
pub fn set_membership(iters: u32) -> Module {
    Module::new(
        "set-membership",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "HashSet",
        move |ctx: &ModuleCtx| {
            let registry: HashSet<u64> = HashSet::new(&ctx.runtime);
            let p = pace(ctx);
            let r1 = registry.clone();
            let rt1 = ctx.runtime.clone();
            let registrar = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt1);
                for i in 0..iters {
                    filler.tick(i);
                    r1.add(u64::from(i));
                    std::thread::sleep(p);
                }
            });
            let r2 = registry.clone();
            let monitor = ctx.pool.spawn(move || {
                for i in 0..iters {
                    let _ = r2.contains(&u64::from(i));
                    std::thread::sleep(p);
                }
            });
            registrar.wait();
            monitor.wait();
        },
    )
}

/// A hand-rolled work-stealing deque: the owner pushes/pops at the back
/// while a thief pops the front — write-write on a thread-unsafe deque.
pub fn deque_workers(iters: u32) -> Module {
    Module::new(
        "deque-workers",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "LinkedDeque",
        move |ctx: &ModuleCtx| {
            let deque: LinkedDeque<u64> = LinkedDeque::new(&ctx.runtime);
            let p = pace(ctx);
            let d1 = deque.clone();
            let rt1 = ctx.runtime.clone();
            let owner = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt1);
                for i in 0..iters {
                    filler.tick(i);
                    d1.push_back(u64::from(i));
                    if i % 3 == 2 {
                        let _ = d1.pop_back();
                    }
                    std::thread::sleep(p);
                }
            });
            let d2 = deque.clone();
            let thief = ctx.pool.spawn(move || {
                for _ in 0..iters {
                    let _ = d2.pop_front(); // Steal without synchronization.
                    std::thread::sleep(p);
                }
            });
            owner.wait();
            thief.wait();
        },
    )
}

/// Feature flags in a shared `BitArray`: a writer toggles bits while a
/// health checker counts them.
pub fn bitmap_flags(iters: u32) -> Module {
    Module::new(
        "bitmap-flags",
        1,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "BitArray",
        move |ctx: &ModuleCtx| {
            let flags = BitArray::new(&ctx.runtime);
            flags.resize(128);
            let p = pace(ctx);
            let f1 = flags.clone();
            let rt1 = ctx.runtime.clone();
            let toggler = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt1);
                for i in 0..iters {
                    filler.tick(i);
                    f1.flip(usize::from(i as u16 % 128));
                    std::thread::sleep(p);
                }
            });
            let f2 = flags.clone();
            let checker = ctx.pool.spawn(move || {
                for _ in 0..iters {
                    let _ = f2.count_ones();
                    std::thread::sleep(p);
                }
            });
            toggler.wait();
            checker.wait();
        },
    )
}

/// A leaderboard in a shared `SortedList`: score updates race the
/// first/last queries of a display task.
pub fn sorted_index(iters: u32) -> Module {
    Module::new(
        "sorted-index",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "SortedList",
        move |ctx: &ModuleCtx| {
            let board: SortedList<u64, u64> = SortedList::new(&ctx.runtime);
            let p = pace(ctx);
            let b1 = board.clone();
            let rt1 = ctx.runtime.clone();
            let scorer = ctx.pool.spawn(move || {
                let filler = Filler::new(&rt1);
                for i in 0..iters {
                    filler.tick(i);
                    b1.set(busy_work(i % 5) % 32, u64::from(i));
                    std::thread::sleep(p);
                }
            });
            let b2 = board.clone();
            let display = ctx.pool.spawn(move || {
                for _ in 0..iters {
                    let _ = b2.first();
                    let _ = b2.last();
                    std::thread::sleep(p);
                }
            });
            scorer.wait();
            display.wait();
        },
    )
}

/// An undo stack shared by two editors: concurrent push/pop — write-write.
pub fn stack_undo(iters: u32) -> Module {
    Module::new(
        "stack-undo",
        1,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Stack",
        move |ctx: &ModuleCtx| {
            let undo: Stack<u64> = Stack::new(&ctx.runtime);
            let p = pace(ctx);
            let handles: Vec<_> = (0..2u64)
                .map(|w| {
                    let s = undo.clone();
                    let rt = ctx.runtime.clone();
                    ctx.pool.spawn(move || {
                        let filler = Filler::new(&rt);
                        for i in 0..iters {
                            filler.tick(i);
                            if (u64::from(i) + w) % 2 == 0 {
                                s.push(w << 32 | u64::from(i));
                            } else {
                                let _ = s.pop();
                            }
                            std::thread::sleep(p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
        },
    )
}

/// An async pipeline built from `then` continuations: stage 1 parses,
/// stage 2 enriches, stage 3 publishes into a shared results dictionary.
/// The publishes of concurrently processed requests race — the
/// post-`await` continuation shape of Fig. 3/4, via `ContinueWith`.
pub fn pipeline_continuations(requests: u32) -> Module {
    Module::new(
        "pipeline-continuations",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: true,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let results: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            let mut finals = Vec::new();
            for req in 0..requests {
                let r = results.clone();
                let parse = ctx.pool.spawn(move || {
                    std::thread::sleep(p); // Parse the request.
                    u64::from(req) * 3
                });
                let enrich = parse.then(&ctx.pool, move |v| {
                    std::thread::sleep(p); // Enrich with metadata.
                    v + 1
                });
                let publish = enrich.then(&ctx.pool, move |v| {
                    r.set(v % 8, v); // Publish: unsynchronized shared write.
                    v
                });
                finals.push(publish);
                std::thread::sleep(p / 2);
            }
            for f in finals {
                let _ = f.join();
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn all_buggy_scenarios_run_under_noop() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt, 2);
        for m in [
            same_location(3, 4),
            read_write(2, 4),
            queue_drain(4),
            string_log(4),
            hot_loop(32, 3),
            lock_then_unprotected(4),
            set_membership(4),
            deque_workers(4),
            bitmap_flags(4),
            sorted_index(4),
            stack_undo(4),
            pipeline_continuations(4),
        ] {
            m.run(&ctx);
            assert_eq!(m.expectation().planted_pairs(), 1);
        }
    }

    #[test]
    fn queue_drain_terminates_even_if_consumer_outruns_producer() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt, 1); // Single worker: maximal skew.
        queue_drain(3).run(&ctx);
    }
}
