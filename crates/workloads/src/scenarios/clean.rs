//! Modules with no possible TSV. Any report on these is a false positive;
//! each pattern stresses a different detector weakness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tsvd_collections::{Dictionary, HashSet, List, SortedList, Stack};
use tsvd_tasks::TsvdMutex;

use crate::module::{Expectation, Module, ModuleCtx};
use crate::scenarios::{busy_work, pace};

/// Plain single-threaded CRUD over several collections — the bulk of any
/// real test corpus. Exercises instrumentation overhead with zero
/// concurrency.
pub fn crud(iters: u32) -> Module {
    Module::new(
        "crud",
        4,
        Expectation::Clean,
        false,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let dict: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let list: List<u64> = List::new(&ctx.runtime);
            let set: HashSet<u64> = HashSet::new(&ctx.runtime);
            let sorted: SortedList<u64, u64> = SortedList::new(&ctx.runtime);
            let p = pace(ctx);
            for i in 0..u64::from(iters) {
                dict.set(i % 16, i);
                list.add(i);
                set.add(i % 8);
                sorted.set(i % 4, i);
                let _ = dict.get(&(i % 16));
                let _ = list.len();
                let _ = set.contains(&(i % 8));
                let _ = sorted.first();
                if i % 4 == 3 {
                    // Stand-in for the I/O and assertions of a real test.
                    std::thread::sleep(p);
                }
            }
            dict.clear();
            list.clear();
        },
    )
}

/// Two tasks write one dictionary, but every access is consistently
/// guarded by the same lock — the Fig. 6 pattern TSVD's HB inference
/// learns to prune, and the pattern TSVD-HB orders exactly.
pub fn locked_pair(iters: u32) -> Module {
    Module::new(
        "locked-pair",
        2,
        Expectation::Clean,
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let lock: Arc<TsvdMutex<()>> =
                Arc::new(TsvdMutex::with_runtime((), ctx.runtime.clone()));
            let dict: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            let handles: Vec<_> = (0..2u64)
                .map(|w| {
                    let lock = lock.clone();
                    let d = dict.clone();
                    ctx.pool.spawn(move || {
                        for i in 0..iters {
                            {
                                let _g = lock.lock();
                                d.set(w, u64::from(i)); // Always under the lock.
                            }
                            std::thread::sleep(p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
        },
    )
}

/// The writes are ordered by *ad-hoc synchronization* (an atomic flag spin)
/// that no synchronization-monitoring detector models — the "numerous
/// concurrent libraries, volatile variables, and others" problem of §2.3.
/// TSVD-HB believes the accesses are concurrent and wastes delays; TSVD's
/// delay-propagation inference discovers the ordering on its own.
pub fn adhoc_sync(iters: u32) -> Module {
    Module::new(
        "adhoc-sync",
        2,
        Expectation::Clean,
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let dict: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            for round in 0..iters {
                let flag = Arc::new(AtomicBool::new(false));
                let d1 = dict.clone();
                let f1 = flag.clone();
                let first = ctx.pool.spawn(move || {
                    d1.set(1, u64::from(round));
                    f1.store(true, Ordering::Release); // Hand-rolled signal.
                });
                let d2 = dict.clone();
                let second = ctx.pool.spawn(move || {
                    while !flag.load(Ordering::Acquire) {
                        std::thread::sleep(p / 10); // Hand-rolled wait.
                    }
                    d2.set(2, u64::from(round)); // Ordered, but invisibly so.
                });
                first.wait();
                second.wait();
            }
        },
    )
}

/// Sequential phases: a single-threaded initialization writes the
/// dictionary, a concurrent middle phase only *reads* it, and a
/// single-threaded cleanup writes again. Near misses across phase
/// boundaries can never become violations — the case concurrent-phase
/// inference (§3.4.3) exists for.
pub fn sequential_phases(readers: u32, iters: u32) -> Module {
    Module::new(
        "sequential-phases",
        3,
        Expectation::Clean,
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let dict: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            // Initialization phase (sequential writes).
            for i in 0..16 {
                dict.set(i, busy_work(2));
            }
            // Concurrent phase (reads only — allowed by the contract).
            let p = pace(ctx);
            let handles: Vec<_> = (0..readers.max(2))
                .map(|_| {
                    let d = dict.clone();
                    ctx.pool.spawn(move || {
                        for i in 0..iters {
                            let _ = d.get(&u64::from(i % 16));
                            std::thread::sleep(p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
            // Cleanup phase (sequential writes again).
            dict.clear();
        },
    )
}

/// Structured fork/join: the parent writes, forks children that work on
/// *private* collections, joins them all, then writes again. Everything is
/// ordered by fork/join edges.
pub fn fork_join_clean(children: u32, iters: u32) -> Module {
    Module::new(
        "fork-join-clean",
        2,
        Expectation::Clean,
        true,
        "Stack",
        move |ctx: &ModuleCtx| {
            let shared: Stack<u64> = Stack::new(&ctx.runtime);
            shared.push(0); // Parent write before the fork.
            let handles: Vec<_> = (0..children.max(1))
                .map(|c| {
                    let rt = ctx.runtime.clone();
                    ctx.pool.spawn(move || {
                        let private: Stack<u64> = Stack::new(&rt);
                        for i in 0..iters {
                            private.push(u64::from(c) << 32 | u64::from(i));
                        }
                        private.len()
                    })
                })
                .collect();
            let total: usize = handles.into_iter().map(|h| h.join()).sum();
            shared.push(total as u64); // Parent write after all joins.
        },
    )
}

/// Async-heavy chatter: a swarm of short-lived tasks, each working on its
/// own private collection. No TSV is possible, but the fork/join firehose
/// and the dense access stream are exactly the traffic pattern of §2.3
/// where "the number of data accesses no longer dominates synchronization
/// operations" — the workload that makes vector-clock HB *analysis*
/// expensive while TSVD's synchronization-blind design stays cheap.
pub fn async_chatter(tasks: u32, accesses: u32) -> Module {
    Module::new(
        "async-chatter",
        5,
        Expectation::Clean,
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let mut handles = Vec::with_capacity(tasks as usize);
            for t in 0..tasks {
                let rt = ctx.runtime.clone();
                handles.push(ctx.pool.spawn(move || {
                    let private: Dictionary<u64, u64> = Dictionary::new(&rt);
                    for i in 0..u64::from(accesses) {
                        private.set(i % 8, i ^ u64::from(t));
                        let _ = private.get(&(i % 8));
                    }
                    private.len()
                }));
            }
            let mut total = 0usize;
            for h in handles {
                total += h.join();
            }
            assert!(total >= tasks as usize);
        },
    )
}

/// A staged pipeline: stage-1 workers write a hand-off table, everyone
/// joins, and long afterwards stage-2 workers write it again. The
/// conflicting accesses are separated by far more than `T_nm`, so windowed
/// near-miss tracking ignores them — but the "No windowing" ablation
/// (Table 3) pairs them up from the retained history and pays delays that
/// can never catch anything. This is the module shape behind the paper's
/// "windowing is the most important factor in reducing overhead".
pub fn staged_pipeline(objects: u32, stage_gap_beats: u32) -> Module {
    Module::new(
        "staged-pipeline",
        2,
        Expectation::Clean,
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let tables: Vec<Dictionary<u64, u64>> = (0..objects.max(1))
                .map(|_| Dictionary::new(&ctx.runtime))
                .collect();
            let run_stage = |stage: u64| {
                let handles: Vec<_> = tables
                    .iter()
                    .map(|t| {
                        let t = t.clone();
                        ctx.pool.spawn(move || {
                            t.set(stage, busy_work(2));
                            let _ = t.len();
                        })
                    })
                    .collect();
                for h in handles {
                    h.wait();
                }
            };
            run_stage(1);
            // The inter-stage gap: far beyond the near-miss window.
            std::thread::sleep(ctx.beat * stage_gap_beats.max(8));
            run_stage(2);
        },
    )
}

/// Concurrent read-only traffic on a shared collection: reads never
/// conflict, so this is clean by the contract itself.
pub fn read_only(readers: u32, iters: u32) -> Module {
    Module::new(
        "read-only",
        1,
        Expectation::Clean,
        true,
        "SortedList",
        move |ctx: &ModuleCtx| {
            let table: SortedList<u64, u64> = SortedList::new(&ctx.runtime);
            for i in 0..32 {
                table.set(i, i * i);
            }
            let p = pace(ctx);
            let handles: Vec<_> = (0..readers.max(2))
                .map(|_| {
                    let t = table.clone();
                    ctx.pool.spawn(move || {
                        for i in 0..iters {
                            let _ = t.get(&u64::from(i % 32));
                            let _ = t.contains_key(&u64::from(i % 7));
                            std::thread::sleep(p);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn all_clean_scenarios_run_and_are_clean() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt, 2);
        for m in [
            crud(8),
            locked_pair(3),
            adhoc_sync(2),
            sequential_phases(2, 3),
            fork_join_clean(2, 4),
            read_only(2, 3),
            async_chatter(8, 16),
            staged_pipeline(2, 8),
        ] {
            m.run(&ctx);
            assert_eq!(m.expectation(), Expectation::Clean);
        }
    }

    #[test]
    fn crud_is_single_threaded() {
        assert!(!crud(4).uses_async());
    }

    #[test]
    fn locked_pair_under_tsvd_reports_nothing() {
        // The lock makes a violation impossible; TSVD must stay silent
        // (no-false-positive guarantee).
        let rt = Runtime::tsvd(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt.clone(), 2);
        locked_pair(6).run(&ctx);
        assert_eq!(rt.reports().unique_bugs(), 0);
    }
}
