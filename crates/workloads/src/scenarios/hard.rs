//! Hard bugs: the §5.3 false-negative categories.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tsvd_collections::{Dictionary, List};

use crate::module::{Expectation, Module, ModuleCtx};
use crate::scenarios::pace;

/// FN category 1: the two racing operations execute close to each other
/// only under rare schedules (a resource usage vs. its deallocation). In
/// most runs a long gap separates them, so near-miss tracking never arms
/// the pair; across many runs the rare schedule eventually shows up.
///
/// `close_one_in`: on average one run in this many takes the close
/// schedule (seeded, per-run counter → deterministic sequence).
pub fn rare_pair(seed: u64, close_one_in: u32, iters: u32) -> Module {
    let run_counter = Arc::new(AtomicU64::new(0));
    Module::new(
        "rare-pair",
        2,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: false,
        },
        true,
        "List",
        move |ctx: &ModuleCtx| {
            let run = run_counter.fetch_add(1, Ordering::Relaxed);
            let mut rng = SmallRng::seed_from_u64(seed ^ run.wrapping_mul(0x9E37_79B9));
            let close = rng.gen_range(0..close_one_in.max(1)) == 0;
            let resource: List<u64> = List::new(&ctx.runtime);
            resource.add(1);
            let p = pace(ctx);
            let user = {
                let r = resource.clone();
                ctx.pool.spawn(move || {
                    for i in 0..iters {
                        r.add(u64::from(i)); // Resource usage.
                        std::thread::sleep(p);
                    }
                })
            };
            let deallocator = {
                let r = resource.clone();
                // Usually the deallocation happens long after the usage —
                // far outside the near-miss window.
                let gap = if close { p } else { p * (40 * iters) };
                ctx.pool.spawn(move || {
                    std::thread::sleep(gap);
                    for _ in 0..iters {
                        r.clear(); // Resource deallocation.
                        std::thread::sleep(p);
                    }
                })
            };
            user.wait();
            deallocator.wait();
        },
    )
}

/// FN category 3 driver and §3.4.6 "multiple testing runs": both racy
/// operations execute exactly *once* per run. The near miss observed in
/// run 1 is also the only chance to catch the bug, so run 1 always misses;
/// a second run seeded from the trap file delays the first occurrence and
/// catches it.
pub fn single_shot(seed: u64) -> Module {
    Module::new(
        "single-shot",
        1,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: false,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let _ = seed;
            let settings: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let p = pace(ctx);
            let s1 = settings.clone();
            let init = ctx.pool.spawn(move || {
                s1.set(1, 42); // Executes once per run.
            });
            let s2 = settings.clone();
            let probe = ctx.pool.spawn(move || {
                std::thread::sleep(p / 2);
                let _ = s2.contains_key(&1); // Executes once per run.
            });
            init.wait();
            probe.wait();
        },
    )
}

/// FN category 3 proper: the pair arms (the accesses stray into the
/// near-miss window), but the slow side's period exceeds the delay length,
/// so a base-length trap usually expires before the partner arrives. The
/// paper saw these bugs surface only "after a couple of more runs"; the
/// adaptive-delay extension catches them by doubling fruitless delays.
pub fn slow_partner(seed: u64, fast_iters: u32) -> Module {
    Module::new(
        "slow-partner",
        1,
        Expectation::Buggy {
            pairs: 1,
            first_run_catchable: false,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let _ = seed;
            let shared: Dictionary<u64, u64> = Dictionary::new(&ctx.runtime);
            let beat = ctx.beat;
            let periods = fast_iters.clamp(4, 12);
            // Both workers tick every beat doing private work (a dense access
            // stream, so no long gaps exist for HB inference to misread) and
            // write the shared dictionary on *drifting* periods (10 vs 9
            // beats). Their first shared ops coincide and arm the pair, but
            // afterwards the phase between shared ops sweeps 0..4.5 beats:
            // most base-length traps (4 beats) expire before the partner's
            // next op, while a lengthened delay covers every phase — the
            // §5.3 category-3 shape ("the injected delay was not long enough
            // to trigger the bug").
            let spawn_worker = |period: u32, key: u64| {
                let s = shared.clone();
                let rt = ctx.runtime.clone();
                ctx.pool.spawn(move || {
                    let private: Dictionary<u64, u64> = Dictionary::new(&rt);
                    for t in 0..periods * 10 {
                        private.set(u64::from(t % 4), u64::from(t)); // Filler.
                        if t % period == 0 {
                            s.set(key, u64::from(t)); // Drifting shared write.
                        }
                        std::thread::sleep(beat);
                    }
                })
            };
            let a = spawn_worker(10, 1);
            let b = spawn_worker(9, 2);
            a.wait();
            b.wait();
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn rare_pair_schedule_sequence_is_deterministic() {
        // Two modules with the same seed take the same close/far decisions.
        // 64 runs, not 20: with a 1-in-8 close rate, "at least one close"
        // must not hinge on the first few draws of one particular stream.
        let decisions = |seed: u64| -> Vec<bool> {
            (0..64u64)
                .map(|run| {
                    let mut rng = SmallRng::seed_from_u64(seed ^ run.wrapping_mul(0x9E37_79B9));
                    rng.gen_range(0..8u32) == 0
                })
                .collect()
        };
        assert_eq!(decisions(7), decisions(7));
        assert!(decisions(7).iter().any(|&c| c), "some run must be close");
        assert!(!decisions(7).iter().all(|&c| c), "most runs must be far");
    }

    #[test]
    fn hard_scenarios_run_under_noop() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt, 2);
        rare_pair(3, 1, 2).run(&ctx); // close_one_in = 1 → always close → fast.
        single_shot(3).run(&ctx);
    }

    #[test]
    fn single_shot_is_flagged_not_first_run_catchable() {
        let m = single_shot(1);
        assert_eq!(
            m.expectation(),
            Expectation::Buggy {
                pairs: 1,
                first_run_catchable: false
            }
        );
    }
}
