//! Scenario catalog: one constructor per bug/non-bug pattern.
//!
//! Grouped by provenance:
//!
//! - [`paper_examples`] — the concrete bugs the paper shows in code
//!   (Fig. 1, Fig. 3, Fig. 10 a/b, and the §5.6 production incident);
//! - [`buggy`] — generic planted-TSV patterns matching the Table 1 bug
//!   characteristics (same-location, read-write, async-heavy, hot-path);
//! - [`hard`] — bugs reproducing the §5.3 false-negative categories
//!   (rare-schedule pairs and single-shot points needing a second run);
//! - [`clean`] — modules with *no* possible TSV, each stressing a
//!   different part of a detector (locks, ad-hoc synchronization,
//!   sequential phases, fork/join ordering, plain sequential CRUD).

pub mod buggy;
pub mod clean;
pub mod hard;
pub mod paper_examples;

use std::time::Duration;

use crate::module::ModuleCtx;

/// Per-iteration pause that yields the CPU so concurrently scheduled tasks
/// genuinely interleave (required on single-core machines, harmless on
/// larger ones). Scales with the detector's time constants.
pub(crate) fn pace(ctx: &ModuleCtx) -> Duration {
    (ctx.beat / 5).max(Duration::from_micros(20))
}

/// Innocent per-worker instrumentation traffic standing in for the rest of
/// a real test's collection usage. Racy modules are not all racy code: the
/// filler dilutes where random delay injection lands, as real corpora do.
pub(crate) struct Filler {
    dict: tsvd_collections::Dictionary<u64, u64>,
}

impl Filler {
    pub(crate) fn new(rt: &std::sync::Arc<tsvd_core::Runtime>) -> Filler {
        Filler {
            dict: tsvd_collections::Dictionary::new(rt),
        }
    }

    /// A couple of private, conflict-free instrumented accesses.
    pub(crate) fn tick(&self, i: u32) {
        self.dict.set(u64::from(i % 8), u64::from(i));
        let _ = self.dict.get(&u64::from(i % 8));
    }
}

/// A deterministic bit of CPU work standing in for application logic.
pub(crate) fn busy_work(units: u32) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..units * 25 {
        acc = acc.rotate_left(7) ^ u64::from(i).wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_work_is_deterministic() {
        assert_eq!(busy_work(4), busy_work(4));
        assert_ne!(busy_work(4), busy_work(5));
    }
}
