//! Suite generators: the "Small" / "Large" benchmark analogs.
//!
//! A suite is a deterministic, seeded mix of scenario modules whose
//! proportions mirror the paper's corpus: most modules are clean (plain
//! CRUD, correctly locked code, fork/join pipelines, read-only traffic),
//! a small percentage carry planted TSVs of the Table 1 flavours, and a
//! few contain the hard bugs behind the §5.3 false-negative analysis.

use crate::module::Module;
use crate::scenarios::{buggy, clean, hard, paper_examples};

/// Suite parameters.
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// Number of modules to generate.
    pub modules: usize,
    /// Seed controlling per-module parameters.
    pub seed: u64,
}

impl SuiteConfig {
    /// The default CI-scale analog of the paper's 1000-module Small suite.
    pub fn small() -> SuiteConfig {
        SuiteConfig {
            modules: 200,
            seed: 0x534D_414C,
        }
    }

    /// A larger analog for Table 1 statistics.
    pub fn large() -> SuiteConfig {
        SuiteConfig {
            modules: 800,
            seed: 0x4C41_5247,
        }
    }

    /// A tiny suite for fast tests.
    pub fn tiny() -> SuiteConfig {
        SuiteConfig {
            modules: 24,
            seed: 0x54494E59,
        }
    }
}

/// Builds a deterministic suite: same config → same module list.
///
/// Per 25 modules: 17 clean (paced CRUD ×8, async chatter ×3, locked,
/// ad-hoc sync, sequential phases, fork/join, read-only, staged pipeline),
/// 6 first-run-catchable planted bugs rotating over every paper example
/// and Table 1 shape, and 2 hard bugs (one rare-schedule; one single-shot
/// or slow-partner). That is an 8 / 25 = 32 % nominal bug-module rate,
/// far above the paper's 1.9 % so that CI-scale suites still carry enough
/// bugs to measure; DESIGN.md documents the substitution.
pub fn build_suite(config: SuiteConfig) -> Vec<Module> {
    let mut modules = Vec::with_capacity(config.modules);
    for i in 0..config.modules {
        let seed = config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let small = 3 + (seed % 3) as u32; // 3..=5
        let medium = 6 + (seed % 5) as u32; // 6..=10
        let m = match i % 25 {
            // --- Clean majority -------------------------------------------
            0..=7 => clean::crud(16 + (seed % 16) as u32),
            8..=10 => clean::async_chatter(40 + (seed % 20) as u32, 100),
            11 => clean::locked_pair(small),
            12 => clean::adhoc_sync(small.min(3)),
            13 => clean::sequential_phases(2, small),
            14 => clean::fork_join_clean(small, medium),
            15 => clean::read_only(2, small),
            16 => clean::staged_pipeline(4, 10 + (seed % 6) as u32),
            // --- First-run-catchable planted bugs -------------------------
            17 => paper_examples::dict_racy(medium),
            18 => paper_examples::getsqrt_cache(small + 3),
            19 => {
                if seed.is_multiple_of(2) {
                    paper_examples::device_manager(medium)
                } else {
                    paper_examples::network_validation(medium)
                }
            }
            20 => match seed % 6 {
                0 => paper_examples::list_sort_race(small),
                1 => buggy::string_log(medium),
                2 => buggy::queue_drain(medium),
                3 => buggy::deque_workers(medium),
                4 => buggy::pipeline_continuations(medium),
                _ => buggy::stack_undo(medium),
            },
            21 => match seed % 6 {
                0 => buggy::same_location(3, medium),
                1 => buggy::read_write(2, medium),
                2 => buggy::lock_then_unprotected(medium),
                3 => buggy::set_membership(medium),
                4 => buggy::bitmap_flags(medium),
                _ => buggy::sorted_index(medium),
            },
            22 => buggy::hot_loop(300 + (seed % 200) as u32, small),
            // --- Hard bugs -------------------------------------------------
            23 => hard::rare_pair(seed, 8, small.min(3)),
            _ => {
                if seed.is_multiple_of(3) {
                    hard::slow_partner(seed, 12)
                } else {
                    hard::single_shot(seed)
                }
            }
        };
        modules.push(rename(m, i));
    }
    modules
}

/// Prefixes the module name with its suite index so every module is
/// uniquely addressable in reports.
fn rename(m: Module, index: usize) -> Module {
    let name = format!("m{index:04}:{}", m.name());
    let expectation = m.expectation();
    let tests = m.tests();
    let uses_async = m.uses_async();
    let structure = m.structure();
    Module::new(
        name,
        tests,
        expectation,
        uses_async,
        structure,
        move |ctx| m.run(ctx),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Expectation;

    #[test]
    fn suite_is_deterministic() {
        let a = build_suite(SuiteConfig::tiny());
        let b = build_suite(SuiteConfig::tiny());
        let names = |s: &[Module]| s.iter().map(|m| m.name().to_owned()).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn suite_mix_has_expected_proportions() {
        let suite = build_suite(SuiteConfig {
            modules: 100,
            seed: 1,
        });
        let buggy = suite
            .iter()
            .filter(|m| m.expectation() != Expectation::Clean)
            .count();
        let clean = suite.len() - buggy;
        assert_eq!(buggy, 32, "8 of every 25 modules carry a planted bug");
        assert_eq!(clean, 68);
    }

    #[test]
    fn module_names_are_unique() {
        let suite = build_suite(SuiteConfig::small());
        let mut names: Vec<&str> = suite.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn hard_bugs_are_marked_not_first_run_catchable() {
        let suite = build_suite(SuiteConfig {
            modules: 50,
            seed: 2,
        });
        let hard: Vec<_> = suite
            .iter()
            .filter(|m| {
                matches!(
                    m.expectation(),
                    Expectation::Buggy {
                        first_run_catchable: false,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(hard.len(), 4, "two hard bugs per 25 modules");
    }
}
