//! Synthetic benchmark corpus with planted ground truth.
//!
//! The paper evaluates TSVD on ~43 K proprietary software modules; this
//! crate is the substitution documented in DESIGN.md: a deterministic,
//! seeded generator of *modules* — multi-threaded unit tests built from the
//! instrumented collections and the task substrate — whose bug content is
//! known by construction:
//!
//! - **planted TSVs** of every flavour Table 1 reports (write-write,
//!   read-write, same-location, async-heavy, Dictionary-heavy, ...);
//! - **non-bugs** that stress each detector differently: lock-protected
//!   near-misses, ad-hoc synchronization invisible to vector clocks,
//!   sequential phases, hot loops;
//! - **hard bugs** reproducing the paper's three false-negative categories
//!   (§5.3): rare-schedule pairs, inference-fooling lock patterns, and
//!   single-shot TSVD points that only a second (trap-file-seeded) run can
//!   catch.
//!
//! [`suite`] assembles these into the "Small"/"Large" benchmark analogs;
//! [`opensource`] reproduces the 9 open-source projects of Table 4.

#![warn(missing_docs)]

pub mod module;
pub mod opensource;
pub mod scenarios;
pub mod suite;

pub use module::{Expectation, Module, ModuleCtx};
pub use suite::{build_suite, SuiteConfig};
