//! The nine open-source projects of Table 4, as scenario analogs.
//!
//! Each module reproduces the *bug pattern* of the cited GitHub issue/PR —
//! the data structure, the access shape, and the original project's test
//! style — which is what "TSVD detects and triggers all the TSVs in at
//! most 2 runs" exercises. LoC and test counts are carried as metadata so
//! the Table 4 report can print the paper's columns.

use tsvd_collections::{Dictionary, List, StringBuilder};

use crate::module::{Expectation, Module, ModuleCtx};
use crate::scenarios::pace;

/// Metadata for one Table 4 row.
#[derive(Debug, Clone, Copy)]
pub struct ProjectInfo {
    /// Project name as in Table 4.
    pub name: &'static str,
    /// Lines of code (paper's column, carried as metadata).
    pub loc_k: f64,
    /// Number of tests in the project.
    pub tests: u32,
    /// Runs the paper needed to find the TSVs.
    pub paper_runs: u32,
    /// TSVs the paper reports.
    pub paper_tsvs: u32,
}

/// A Table 4 project: metadata plus the reproduction module.
pub struct Project {
    /// Row metadata.
    pub info: ProjectInfo,
    /// The module that reproduces the project's bug pattern.
    pub module: Module,
}

fn cache_race(name: &'static str, tests: u32, pairs: usize, keys: u32, iters: u32) -> Module {
    // The common open-source shape: a static type/config cache written from
    // concurrently running tests (Sequelocity's TypeCacher,
    // System.Linq.Dynamic's ClassFactory, DateTimeExtensions' locale data).
    // Each round is one unit test with a fresh cache — the pattern executes
    // many times per test run, which is what lets TSVD convert a round-k
    // near miss into a round-k+1 trap ("most instructions execute more than
    // once", §3.4.6).
    Module::new(
        name,
        tests,
        Expectation::Buggy {
            pairs,
            first_run_catchable: true,
        },
        true,
        "Dictionary",
        move |ctx: &ModuleCtx| {
            let p = pace(ctx);
            // 2 unit tests x 3 cache constructions each: the check-then-
            // insert pattern repeats, so a pair armed by one construction's
            // near miss traps the next construction's insert.
            for _round in 0..2 {
                for _construction in 0..3 {
                    let type_cache: Dictionary<u32, u64> = Dictionary::new(&ctx.runtime);
                    let mut handles = Vec::new();
                    for worker in 0..2 {
                        let c = type_cache.clone();
                        handles.push(ctx.pool.spawn(move || {
                            for i in 0..iters {
                                let key = (worker * 131 + i) % keys.max(1);
                                if !c.contains_key(&key) {
                                    c.set(key, u64::from(key) * 3); // Unlocked insert.
                                }
                                let _ = c.get(&key);
                                std::thread::sleep(p);
                            }
                        }));
                    }
                    for h in handles {
                        h.wait();
                    }
                }
            }
        },
    )
}

/// Builds all nine Table 4 projects.
pub fn projects() -> Vec<Project> {
    vec![
        Project {
            info: ProjectInfo {
                name: "ApplicationInsights",
                loc_k: 67.5,
                tests: 934,
                paper_runs: 2,
                paper_tsvs: 1,
            },
            // Broadcast processor drops telemetry: a shared List of
            // telemetry items appended by the broadcaster while the flush
            // path swaps/reads it.
            module: Module::new(
                "ApplicationInsights",
                934,
                Expectation::Buggy {
                    pairs: 1,
                    first_run_catchable: true,
                },
                true,
                "List",
                |ctx: &ModuleCtx| {
                    let telemetry: List<u64> = List::new(&ctx.runtime);
                    let p = pace(ctx);
                    let t1 = telemetry.clone();
                    let broadcast = ctx.pool.spawn(move || {
                        for i in 0..8u64 {
                            t1.add(i);
                            std::thread::sleep(p);
                        }
                    });
                    let t2 = telemetry.clone();
                    let flusher = ctx.pool.spawn(move || {
                        for _ in 0..4 {
                            let _ = t2.to_vec();
                            t2.clear(); // Drops items added in between.
                            std::thread::sleep(p * 2);
                        }
                    });
                    broadcast.wait();
                    flusher.wait();
                },
            ),
        },
        Project {
            info: ProjectInfo {
                name: "DateTimeExtensions",
                loc_k: 3.2,
                tests: 169,
                paper_runs: 1,
                paper_tsvs: 3,
            },
            module: cache_race("DateTimeExtensions", 169, 3, 4, 8),
        },
        Project {
            info: ProjectInfo {
                name: "FluentAssertions",
                loc_k: 78.3,
                tests: 3076,
                paper_runs: 1,
                paper_tsvs: 2,
            },
            // SelfReferenceEquivalencyAssertionOptions.GetEqualityStrategy:
            // a strategy memo dictionary read and written without a lock.
            module: cache_race("FluentAssertions", 3076, 2, 3, 8),
        },
        Project {
            info: ProjectInfo {
                name: "K8s-client",
                loc_k: 332.3,
                tests: 76,
                paper_runs: 2,
                paper_tsvs: 1,
            },
            // Watcher bookkeeping map mutated from the watch callback while
            // the dispose path clears it.
            module: Module::new(
                "K8s-client",
                76,
                Expectation::Buggy {
                    pairs: 1,
                    first_run_catchable: true,
                },
                true,
                "Dictionary",
                |ctx: &ModuleCtx| {
                    let watchers: Dictionary<u32, u64> = Dictionary::new(&ctx.runtime);
                    let p = pace(ctx);
                    let w1 = watchers.clone();
                    let watch = ctx.pool.spawn(move || {
                        for i in 0..6 {
                            w1.set(i, u64::from(i));
                            std::thread::sleep(p);
                        }
                    });
                    let w2 = watchers.clone();
                    let dispose = ctx.pool.spawn(move || {
                        std::thread::sleep(p * 3);
                        w2.clear();
                    });
                    watch.wait();
                    dispose.wait();
                },
            ),
        },
        Project {
            info: ProjectInfo {
                name: "Radical",
                loc_k: 96.9,
                tests: 965,
                paper_runs: 1,
                paper_tsvs: 3,
            },
            // MessageBroker's internal subscription list is not thread
            // safe: concurrent subscribe / unsubscribe / dispatch.
            module: Module::new(
                "Radical",
                965,
                Expectation::Buggy {
                    pairs: 3,
                    first_run_catchable: true,
                },
                true,
                "List",
                |ctx: &ModuleCtx| {
                    let subscriptions: List<u64> = List::new(&ctx.runtime);
                    let p = pace(ctx);
                    let s1 = subscriptions.clone();
                    let subscriber = ctx.pool.spawn(move || {
                        for i in 0..8u64 {
                            s1.add(i);
                            std::thread::sleep(p);
                        }
                    });
                    let s2 = subscriptions.clone();
                    let unsubscriber = ctx.pool.spawn(move || {
                        for _ in 0..4 {
                            let _ = s2.remove_at(0);
                            std::thread::sleep(p);
                        }
                    });
                    let s3 = subscriptions.clone();
                    let dispatcher = ctx.pool.spawn(move || {
                        for _ in 0..8 {
                            let _ = s3.to_vec(); // Iterate subscribers.
                            std::thread::sleep(p);
                        }
                    });
                    subscriber.wait();
                    unsubscriber.wait();
                    dispatcher.wait();
                },
            ),
        },
        Project {
            info: ProjectInfo {
                name: "Sequelocity",
                loc_k: 6.6,
                tests: 209,
                paper_runs: 1,
                paper_tsvs: 3,
            },
            module: cache_race("Sequelocity", 209, 3, 4, 8),
        },
        Project {
            info: ProjectInfo {
                name: "Statsd",
                loc_k: 2.5,
                tests: 34,
                paper_runs: 2,
                paper_tsvs: 1,
            },
            // Gauge updates: concurrent set on the same metric key — a
            // same-location write-write pair.
            module: Module::new(
                "Statsd",
                34,
                Expectation::Buggy {
                    pairs: 1,
                    first_run_catchable: true,
                },
                true,
                "Dictionary",
                |ctx: &ModuleCtx| {
                    let gauges: Dictionary<u32, u64> = Dictionary::new(&ctx.runtime);
                    let p = pace(ctx);
                    let handles: Vec<_> = (0..2)
                        .map(|w| {
                            let g = gauges.clone();
                            ctx.pool.spawn(move || {
                                for i in 0..6u64 {
                                    g.set(1, w * 100 + i); // Same gauge, same line.
                                    std::thread::sleep(p);
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.wait();
                    }
                },
            ),
        },
        Project {
            info: ProjectInfo {
                name: "System.Linq.Dynamic",
                loc_k: 1.2,
                tests: 7,
                paper_runs: 1,
                paper_tsvs: 1,
            },
            module: cache_race("System.Linq.Dynamic", 7, 1, 1, 4),
        },
        Project {
            info: ProjectInfo {
                name: "Thunderstruck",
                loc_k: 1.1,
                tests: 52,
                paper_runs: 1,
                paper_tsvs: 2,
            },
            // ConnectionStringBuffer singleton: check-then-append on a
            // shared buffer. TSVD found one extra TSV beyond the report.
            module: Module::new(
                "Thunderstruck",
                52,
                Expectation::Buggy {
                    pairs: 2,
                    first_run_catchable: true,
                },
                true,
                "StringBuilder",
                |ctx: &ModuleCtx| {
                    let p = pace(ctx);
                    // 2 unit tests x 3 singleton constructions each: the
                    // lazy-init pattern repeats within a test, so the pair
                    // armed by one construction traps the next one's append.
                    for _round in 0..2 {
                        for _construction in 0..3 {
                            let buffer = StringBuilder::new(&ctx.runtime);
                            let handles: Vec<_> = (0..2)
                                .map(|w| {
                                    let b = buffer.clone();
                                    ctx.pool.spawn(move || {
                                        for _ in 0..4 {
                                            if b.is_empty() {
                                                b.append("Server=db0;"); // Init race.
                                            }
                                            let _ = b.to_string();
                                            let _ = w;
                                            std::thread::sleep(p);
                                        }
                                    })
                                })
                                .collect();
                            for h in handles {
                                h.wait();
                            }
                        }
                    }
                },
            ),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::{Runtime, TsvdConfig};

    #[test]
    fn nine_projects_matching_table4() {
        let ps = projects();
        assert_eq!(ps.len(), 9);
        let total_tsvs: u32 = ps.iter().map(|p| p.info.paper_tsvs).sum();
        assert_eq!(total_tsvs, 17, "Table 4 reports 17 TSVs in total");
        assert!(ps.iter().all(|p| p.info.paper_runs <= 2));
    }

    #[test]
    fn all_projects_run_under_noop() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let ctx = ModuleCtx::new(rt, 2);
        for p in projects() {
            p.module.run(&ctx);
            assert!(p.module.expectation().planted_pairs() >= 1);
        }
    }
}
