//! CI regression gate for the `OnCall` scaling benchmarks.
//!
//! `oncall_gate --write BENCH_oncall.json` measures every (shape, detector,
//! threads) point with the same worker loop the Criterion bench uses and
//! persists the results; `--check BENCH_oncall.json [--quick]` re-measures
//! and fails (exit 1) if any point regressed by more than 15% — or if one
//! of the absolute invariants below no longer holds.
//!
//! Raw nanoseconds-per-access are machine-dependent, so the stored numbers
//! that gate CI are *normalized*: each point is divided by the same run's
//! `noop @ 1 thread` time for the same shape. That ratio is "detector cost
//! in units of bare-instrumentation cost" and transfers across machines.
//!
//! Two absolute invariants are enforced on every run (write and check),
//! both on the read-only high-cardinality shape where a batched runtime
//! never leaves the zero-shared-write fast path:
//! - `tsvd_batched` at 8 threads must be no slower than inline `tsvd` at 8
//!   threads measured in the same run (the point of this whole exercise);
//! - `tsvd_batched`'s projected 1→8 scaling must be ≥ 6×. On a machine with
//!   fewer than 8 cores wall-clock scaling is capped by the scheduler, so
//!   the projection uses per-access time instead: a perfectly scalable hot
//!   path keeps per-access time flat as threads multiplex onto the same
//!   cores, giving `8 × t1/t8 ≈ 8`; a serializing one inflates `t8` and the
//!   projection collapses toward 1.

use std::process::ExitCode;

use serde::{Deserialize, Serialize};
use tsvd_bench::{make_sites, measure_per_access_ns, tsvd_batched, Factory, SHAPES};
use tsvd_core::Runtime;

/// Detector table the gate persists. Smaller than the Criterion bench's:
/// the gate exists to catch hot-path regressions, not to profile every
/// strategy variant.
const DETECTORS: &[(&str, Factory)] = &[
    ("noop", Runtime::noop),
    ("tsvd", Runtime::tsvd),
    ("tsvd_batched", tsvd_batched),
];

const THREADS: &[usize] = &[1, 2, 4, 8];

/// Allowed growth of a normalized ratio before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 1.15;

/// Minimum projected 1→8 scaling for `tsvd_batched` on `highcard_ro`.
const MIN_PROJECTED_SCALING: f64 = 6.0;

/// Noise allowance for the batched-vs-inline comparison. On a machine with
/// enough cores the batched path wins outright (there is real cross-core
/// contention to eliminate); on a single-core runner both paths do the same
/// total analysis work and differ only by measurement noise, which this
/// absorbs while still failing if batching ever becomes categorically
/// slower.
const BATCHED_VS_INLINE_TOLERANCE: f64 = 1.10;

#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    shape: String,
    detector: String,
    threads: u32,
    per_access_ns: f64,
    /// `per_access_ns` ÷ the same run's `noop @ 1 thread` for this shape.
    normalized: f64,
}

/// Gate unit: the geometric mean of one detector's normalized ratios
/// across all thread counts of one shape. Single (shape, detector,
/// threads) points on a loaded CI runner are too noisy to gate at 15%;
/// averaging the four thread counts is, while still catching any real
/// hot-path regression (which moves every thread count together).
#[derive(Debug, Serialize, Deserialize)]
struct Aggregate {
    shape: String,
    detector: String,
    normalized_geomean: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    schema_version: u32,
    mode: String,
    /// Projected 1→8 scaling for `tsvd_batched` on `highcard_ro`
    /// (`min(8, 8 × t1/t8)`), re-derived and re-gated on every check.
    projected_scaling_8: f64,
    /// Per-point measurements (informational; not gated individually).
    entries: Vec<Entry>,
    /// The gated aggregates.
    aggregates: Vec<Aggregate>,
}

struct Params {
    iters: u64,
    reps: usize,
}

fn measure_all(params: &Params, mode: &str) -> BenchFile {
    let mut entries = Vec::new();
    for shape in SHAPES {
        let sites = make_sites(shape.n_sites);
        let noop_t1 =
            measure_per_access_ns(Runtime::noop, 1, params.iters, shape, &sites, params.reps);
        for &(name, factory) in DETECTORS {
            for &threads in THREADS {
                let per_access_ns = if name == "noop" && threads == 1 {
                    noop_t1
                } else {
                    measure_per_access_ns(
                        factory,
                        threads,
                        params.iters,
                        shape,
                        &sites,
                        params.reps,
                    )
                };
                eprintln!(
                    "  {:<12} {:<13} {} thr: {:>8.1} ns/access ({:.2}x noop@1)",
                    shape.name,
                    name,
                    threads,
                    per_access_ns,
                    per_access_ns / noop_t1
                );
                entries.push(Entry {
                    shape: shape.name.to_string(),
                    detector: name.to_string(),
                    threads: threads as u32,
                    per_access_ns,
                    normalized: per_access_ns / noop_t1,
                });
            }
        }
    }
    let projected_scaling_8 = projected_scaling(&entries);
    let aggregates = aggregate(&entries);
    BenchFile {
        schema_version: 1,
        mode: mode.to_string(),
        projected_scaling_8,
        entries,
        aggregates,
    }
}

fn aggregate(entries: &[Entry]) -> Vec<Aggregate> {
    let mut out: Vec<Aggregate> = Vec::new();
    for shape in SHAPES {
        for &(name, _) in DETECTORS {
            let ratios: Vec<f64> = entries
                .iter()
                .filter(|e| e.shape == shape.name && e.detector == name)
                .map(|e| e.normalized)
                .collect();
            if ratios.is_empty() {
                continue;
            }
            let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            out.push(Aggregate {
                shape: shape.name.to_string(),
                detector: name.to_string(),
                normalized_geomean: geomean,
            });
        }
    }
    out
}

fn lookup(entries: &[Entry], shape: &str, detector: &str, threads: u32) -> Option<f64> {
    entries
        .iter()
        .find(|e| e.shape == shape && e.detector == detector && e.threads == threads)
        .map(|e| e.per_access_ns)
}

/// Projected 1→8 scaling for `tsvd_batched` on the read-only shape: a
/// perfectly scalable hot path keeps per-access time flat as the thread
/// count grows, so `8 × (low-thread time / high-thread time)` approaches 8
/// even when the runner has a single core; a serializing path inflates the
/// high-thread times and the projection collapses toward 1. Each side of
/// the ratio averages two thread counts to damp single-cell noise.
fn projected_scaling(entries: &[Entry]) -> f64 {
    let cell =
        |threads| lookup(entries, "highcard_ro", "tsvd_batched", threads).unwrap_or(f64::NAN);
    let low = (cell(1) * cell(2)).sqrt();
    let high = (cell(4) * cell(8)).sqrt();
    (8.0 * low / high).min(8.0)
}

/// The machine-independent invariants that must hold on every run. Both
/// compare whole thread-count sweeps (geometric means over 1/2/4/8
/// threads), not single cells — one (detector, threads) point on a busy
/// single-core runner can swing ±25% between reps, a four-point geomean
/// does not.
fn check_invariants(current: &BenchFile) -> Result<(), String> {
    let agg = |detector: &str| {
        current
            .aggregates
            .iter()
            .find(|a| a.shape == "highcard_ro" && a.detector == detector)
            .map(|a| a.normalized_geomean)
            .ok_or_else(|| format!("missing highcard_ro/{detector} aggregate"))
    };
    let batched = agg("tsvd_batched")?;
    let inline = agg("tsvd")?;
    if batched > inline * BATCHED_VS_INLINE_TOLERANCE {
        return Err(format!(
            "batched hot path is slower than the inline path: tsvd_batched \
             {batched:.2}x noop@1 vs tsvd {inline:.2}x noop@1 across 1/2/4/8 \
             threads (highcard_ro)"
        ));
    }
    let scaling = projected_scaling(&current.entries);
    // NaN (missing/zero cells) must fail the gate, so test for the
    // passing condition and invert rather than comparing directly.
    if !(scaling.is_finite() && scaling >= MIN_PROJECTED_SCALING) {
        return Err(format!(
            "projected 1→8 scaling for tsvd_batched on highcard_ro is {scaling:.2}x, \
             need >= {MIN_PROJECTED_SCALING:.1}x"
        ));
    }
    eprintln!(
        "invariants: tsvd_batched {batched:.2}x <= tsvd {inline:.2}x noop@1 \
         (highcard_ro sweep); projected scaling {scaling:.2}x >= {MIN_PROJECTED_SCALING:.1}x"
    );
    Ok(())
}

/// Aggregate normalized-ratio comparison against the stored baseline.
fn check_against(stored: &BenchFile, current: &BenchFile) -> Result<(), String> {
    let mut failures = Vec::new();
    for base in &stored.aggregates {
        let Some(cur) = current
            .aggregates
            .iter()
            .find(|a| a.shape == base.shape && a.detector == base.detector)
        else {
            failures.push(format!(
                "{}/{} missing from current run",
                base.shape, base.detector
            ));
            continue;
        };
        // Regressions only: getting faster than the baseline is fine.
        if cur.normalized_geomean > base.normalized_geomean * REGRESSION_TOLERANCE {
            failures.push(format!(
                "{}/{} regressed: {:.2}x noop@1 across threads \
                 (baseline {:.2}x, tolerance {:.0}%)",
                base.shape,
                base.detector,
                cur.normalized_geomean,
                base.normalized_geomean,
                (REGRESSION_TOLERANCE - 1.0) * 100.0
            ));
        }
    }
    if failures.is_empty() {
        eprintln!(
            "baseline: {} aggregates within {:.0}% of stored normalized ratios",
            stored.aggregates.len(),
            (REGRESSION_TOLERANCE - 1.0) * 100.0
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn write_atomically(path: &str, file: &BenchFile) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(file).expect("bench file serializes");
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json + "\n")?;
    std::fs::rename(&tmp, path)
}

fn usage() -> ExitCode {
    eprintln!("usage: oncall_gate (--write PATH | --check PATH) [--quick]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut write_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write" => write_path = args.next(),
            "--check" => check_path = args.next(),
            "--quick" => quick = true,
            _ => return usage(),
        }
    }
    let (params, mode) = if quick {
        (
            Params {
                iters: 120_000,
                reps: 5,
            },
            "quick",
        )
    } else {
        (
            Params {
                iters: 400_000,
                reps: 5,
            },
            "full",
        )
    };

    match (write_path, check_path) {
        (Some(path), None) => {
            eprintln!("measuring ({mode} mode) ...");
            let current = measure_all(&params, mode);
            if let Err(e) = check_invariants(&current) {
                eprintln!("REFUSING to write a failing baseline:\n{e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = write_atomically(&path, &current) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        (None, Some(path)) => {
            let stored: BenchFile = match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
            {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("failed to load baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("measuring ({mode} mode) ...");
            let current = measure_all(&params, mode);
            let mut failed = false;
            if let Err(e) = check_invariants(&current) {
                eprintln!("INVARIANT FAILURE:\n{e}");
                failed = true;
            }
            if let Err(e) = check_against(&stored, &current) {
                eprintln!("REGRESSION vs {path}:\n{e}");
                failed = true;
            }
            if failed {
                ExitCode::FAILURE
            } else {
                eprintln!("oncall gate: OK");
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
