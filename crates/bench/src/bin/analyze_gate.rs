//! CI regression gate for the incremental static-analysis engine.
//!
//! `analyze_gate --write BENCH_analyze.json` measures cold (empty cache)
//! and warm (fully cached) analysis of a deterministic synthetic workspace
//! and persists the results; `--check BENCH_analyze.json [--quick]`
//! re-measures and fails (exit 1) if the gated ratios regressed by more
//! than 15% — or if an absolute invariant no longer holds.
//!
//! Raw milliseconds are machine-dependent, so the stored numbers that gate
//! CI are *normalized*: each mode's time is divided by the same run's cold
//! single-threaded time. Two invariants are enforced on every run:
//! - a warm run must be at least [`MIN_WARM_SPEEDUP`]× faster than a cold
//!   run (the point of caching per-file artifacts at all);
//! - every measured configuration — cold/warm, any thread count — must
//!   produce byte-identical JSONL output.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use tsvd_analyze::{analyze_workspace_with, AnalyzeOptions};

/// Minimum cold-time / warm-time ratio, single-threaded. The warm path
/// skips lexing, summary extraction, propagation, and pair derivation
/// entirely — it only hashes sources and deserializes cached reports — so
/// anything below this means the cache stopped short-circuiting the
/// pipeline.
const MIN_WARM_SPEEDUP: f64 = 5.0;

/// Allowed growth of a normalized ratio before `--check` fails.
const REGRESSION_TOLERANCE: f64 = 1.15;

/// Thread counts exercised for the cold run (warm runs are IO-bound and
/// gate only at 1 thread).
const COLD_THREADS: &[usize] = &[1, 4];

#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    mode: String,
    threads: u32,
    millis: f64,
    /// `millis` ÷ the same run's `cold @ 1 thread` time.
    normalized: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchFile {
    schema_version: u32,
    mode: String,
    files: u32,
    /// Cold single-threaded time ÷ warm single-threaded time, re-derived
    /// and re-gated on every run (must stay ≥ `MIN_WARM_SPEEDUP`).
    warm_speedup: f64,
    /// Per-point measurements. `cold @ 1` is 1.0 by construction; the
    /// other normalized ratios are gated against the stored baseline.
    entries: Vec<Entry>,
}

struct Params {
    files: usize,
    reps: usize,
}

/// Deterministic synthetic workspace: `files` source files, each with a
/// guarded helper, an unguarded spawn pair, and a join-ordered region, so
/// the cold run exercises the lexer, the interprocedural summary pass, HB
/// pruning, and pair derivation on every file. Each file additionally
/// carries a slab of analysis-inert code (guarded single-op helpers that
/// produce no pairs) so the cold/warm ratio reflects real source files,
/// where full lexing and summary extraction dwarf the content hash and the
/// compact cached artifact a warm run replays.
fn build_workspace(root: &Path, files: usize) {
    std::fs::create_dir_all(root).expect("mkdir workspace");
    for i in 0..files {
        let mut src = format!(
            "use tsvd_collections::Dictionary;\n\
             use tsvd_tasks::sync::TsvdMutex;\n\
             pub fn store_{i}(d: &Dictionary<u64, u64>, m: &TsvdMutex<u32>) {{\n\
                 let g = m.lock();\n\
                 d.set({i}, 1);\n\
             }}\n\
             fn fan_out_{i}(pool: &Pool) {{\n\
                 let board = Dictionary::new();\n\
                 let b1 = board.clone();\n\
                 let b2 = board.clone();\n\
                 pool.spawn(move || b1.set(1, {i}));\n\
                 pool.spawn(move || b2.get(&1));\n\
                 let ordered = board.clone();\n\
                 let worker = pool.spawn(move || ordered.set(2, 2));\n\
                 let _ = worker.join();\n\
                 board.set(3, {i});\n\
             }}\n"
        );
        for j in 0..80 {
            src.push_str(&format!(
                "/// Records sample {j} for unit {i}; the mutex keeps the slot\n\
                 /// private, so the analyzer summarizes and then discards it.\n\
                 pub fn sample_{i}_{j}(d: &Dictionary<u64, u64>, m: &TsvdMutex<u32>) {{\n\
                     let guard = m.lock();\n\
                     let bucket = ({j}u64).wrapping_mul(31).wrapping_add({i});\n\
                     let weight = bucket ^ (bucket >> 7) ^ 0x9e37;\n\
                     let label = \"unit {i} sample {j} checkpoint\";\n\
                     let _ = label.len() + weight as usize;\n\
                     d.set(bucket, weight);\n\
                 }}\n"
            ));
        }
        std::fs::write(root.join(format!("unit_{i:03}.rs")), src).expect("write source");
    }
}

/// Best-of-`reps` wall time for one configuration, in milliseconds, plus
/// the JSONL output (identical across reps by construction — asserted).
fn measure(root: &Path, cache: Option<&Path>, threads: usize, reps: usize) -> (f64, String) {
    let opts = AnalyzeOptions {
        threads,
        cache_dir: cache.map(|c| c.to_path_buf()),
    };
    let mut best = f64::INFINITY;
    let mut jsonl = String::new();
    for rep in 0..reps {
        let start = Instant::now();
        let report = analyze_workspace_with(root, &opts).expect("analyze");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(elapsed);
        let rendered = report.to_jsonl();
        if rep == 0 {
            jsonl = rendered;
        } else {
            assert_eq!(jsonl, rendered, "repeat run changed the output");
        }
    }
    (best, jsonl)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsvd_analyze_gate_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn measure_all(params: &Params, mode: &str) -> BenchFile {
    let root = fresh_dir("ws");
    build_workspace(&root, params.files);
    let cache = fresh_dir("cache");

    let mut entries = Vec::new();
    let mut outputs: Vec<(String, String)> = Vec::new();
    let mut record = |label: &str, threads: usize, millis: f64, jsonl: String| {
        entries.push(Entry {
            mode: label.to_string(),
            threads: threads as u32,
            millis,
            normalized: 0.0, // filled in below once cold@1 is known
        });
        outputs.push((format!("{label} @ {threads}"), jsonl));
    };

    // Uncached single-threaded reference, then cold (cache-filling) and
    // warm (all-hit) runs. The cold measurement deletes the cache before
    // every rep so each rep pays the full pipeline plus the stores.
    for &threads in COLD_THREADS {
        let mut best = f64::INFINITY;
        let mut jsonl = String::new();
        for rep in 0..params.reps {
            std::fs::remove_dir_all(&cache).ok();
            let (ms, out) = measure(&root, Some(&cache), threads, 1);
            best = best.min(ms);
            if rep == 0 {
                jsonl = out;
            } else {
                assert_eq!(jsonl, out, "cold repeat changed the output");
            }
        }
        record("cold", threads, best, jsonl);
    }
    // The cache is now fully populated by the last cold rep.
    let (warm_ms, warm_out) = measure(&root, Some(&cache), 1, params.reps);
    record("warm", 1, warm_ms, warm_out);
    let (nocache_ms, nocache_out) = measure(&root, None, 1, params.reps);
    record("uncached", 1, nocache_ms, nocache_out);

    let reference = &outputs[0].1;
    for (label, out) in &outputs[1..] {
        assert_eq!(
            out, reference,
            "{label} output differs from {}",
            outputs[0].0
        );
    }
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&cache).ok();

    let cold_1 = entries
        .iter()
        .find(|e| e.mode == "cold" && e.threads == 1)
        .map(|e| e.millis)
        .expect("cold @ 1 measured");
    for e in &mut entries {
        e.normalized = e.millis / cold_1;
        eprintln!(
            "  {:<9} {} thr: {:>8.2} ms ({:.3}x cold@1)",
            e.mode, e.threads, e.millis, e.normalized
        );
    }
    let warm = entries
        .iter()
        .find(|e| e.mode == "warm" && e.threads == 1)
        .map(|e| e.millis)
        .expect("warm @ 1 measured");
    BenchFile {
        schema_version: 1,
        mode: mode.to_string(),
        files: params.files as u32,
        warm_speedup: cold_1 / warm,
        entries,
    }
}

/// Machine-independent invariant, enforced on write and check alike.
fn check_invariants(current: &BenchFile) -> Result<(), String> {
    let s = current.warm_speedup;
    if !(s.is_finite() && s >= MIN_WARM_SPEEDUP) {
        return Err(format!(
            "warm analysis is only {s:.1}x faster than cold, need >= \
             {MIN_WARM_SPEEDUP:.0}x: the cache is no longer short-circuiting \
             the pipeline"
        ));
    }
    eprintln!("invariants: warm run {s:.1}x faster than cold (need {MIN_WARM_SPEEDUP:.0}x)");
    Ok(())
}

/// Normalized-ratio comparison against the stored baseline. Only the warm
/// and parallel-cold ratios can regress meaningfully; `cold @ 1` is the
/// unit and `uncached @ 1` tracks it by construction, but both are checked
/// anyway — the loop is uniform and a drifting unit shows up elsewhere.
fn check_against(stored: &BenchFile, current: &BenchFile) -> Result<(), String> {
    let mut failures = Vec::new();
    for base in &stored.entries {
        let Some(cur) = current
            .entries
            .iter()
            .find(|e| e.mode == base.mode && e.threads == base.threads)
        else {
            failures.push(format!(
                "{} @ {} missing from current run",
                base.mode, base.threads
            ));
            continue;
        };
        if cur.normalized > base.normalized * REGRESSION_TOLERANCE {
            failures.push(format!(
                "{} @ {} regressed: {:.3}x cold@1 (baseline {:.3}x, tolerance {:.0}%)",
                base.mode,
                base.threads,
                cur.normalized,
                base.normalized,
                (REGRESSION_TOLERANCE - 1.0) * 100.0
            ));
        }
    }
    if failures.is_empty() {
        eprintln!(
            "baseline: {} entries within {:.0}% of stored normalized ratios",
            stored.entries.len(),
            (REGRESSION_TOLERANCE - 1.0) * 100.0
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn write_atomically(path: &str, file: &BenchFile) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(file).expect("bench file serializes");
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json + "\n")?;
    std::fs::rename(&tmp, path)
}

fn usage() -> ExitCode {
    eprintln!("usage: analyze_gate (--write PATH | --check PATH) [--quick]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut write_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write" => write_path = args.next(),
            "--check" => check_path = args.next(),
            "--quick" => quick = true,
            _ => return usage(),
        }
    }
    let (params, mode) = if quick {
        (Params { files: 48, reps: 3 }, "quick")
    } else {
        (
            Params {
                files: 120,
                reps: 5,
            },
            "full",
        )
    };

    match (write_path, check_path) {
        (Some(path), None) => {
            eprintln!("measuring ({mode} mode) ...");
            let current = measure_all(&params, mode);
            if let Err(e) = check_invariants(&current) {
                eprintln!("REFUSING to write a failing baseline:\n{e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = write_atomically(&path, &current) {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
            ExitCode::SUCCESS
        }
        (None, Some(path)) => {
            let stored: BenchFile = match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
            {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("failed to load baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("measuring ({mode} mode) ...");
            let current = measure_all(&params, mode);
            let mut failed = false;
            if let Err(e) = check_invariants(&current) {
                eprintln!("INVARIANT FAILURE:\n{e}");
                failed = true;
            }
            if let Err(e) = check_against(&stored, &current) {
                eprintln!("REGRESSION vs {path}:\n{e}");
                failed = true;
            }
            if failed {
                ExitCode::FAILURE
            } else {
                eprintln!("analyze gate: OK");
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
