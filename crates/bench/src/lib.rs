//! Shared helpers for the Criterion benchmarks live in the individual
//! bench targets; this library exists only to anchor the package.
