//! Shared measurement harness for the `OnCall` scaling benchmarks.
//!
//! Both the Criterion bench (`benches/oncall_scaling.rs`) and the CI
//! regression gate (`src/bin/oncall_gate.rs`) drive the same worker loop so
//! their numbers are comparable: `iters` accesses split across `threads`
//! workers, each walking its own stride of the object/site space, timed from
//! barrier release to last join. Thread spawn cost is excluded; the
//! thread-exit flush of a batched runtime's local buffer is *included*
//! (workers exit inside the timed region), so batching cannot hide work by
//! leaving it in thread-local buffers.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use tsvd_core::site::{SiteData, SiteId};
use tsvd_core::{ObjId, OpKind, Runtime, TsvdConfig};

/// Batch capacity used by the `*_batched` factory wrappers. Large enough
/// that a quiescent worker flushes only at thread exit for typical bench
/// iteration counts per sample; small enough to keep drain latency bounded.
pub const BENCH_BATCH_CAPACITY: usize = 256;

/// A runtime constructor, so detector variants can be tabulated.
pub type Factory = fn(TsvdConfig) -> Arc<Runtime>;

/// The config every scaling measurement uses: zero delay budget, so the
/// planner still runs but no sleep is ever admitted and the numbers are
/// pure analysis + synchronization cost.
pub fn no_delay_config() -> TsvdConfig {
    let mut c = TsvdConfig::for_testing();
    c.max_delay_per_run_ns = 0;
    c
}

/// `Runtime::tsvd` with thread-local batching enabled.
pub fn tsvd_batched(mut config: TsvdConfig) -> Arc<Runtime> {
    config.batch_capacity = BENCH_BATCH_CAPACITY;
    Runtime::tsvd(config)
}

/// `Runtime::noop` with thread-local batching enabled — isolates the cost
/// of the buffering machinery itself from the analysis it defers.
pub fn noop_batched(mut config: TsvdConfig) -> Arc<Runtime> {
    config.batch_capacity = BENCH_BATCH_CAPACITY;
    Runtime::noop(config)
}

/// What mix of operations the workers issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMix {
    /// 1-in-4 writes, the rest reads: conflicting pairs exist, so a TSVD
    /// detector arms traps and (for batched runtimes) closes the fast-path
    /// gate once it does.
    Mixed,
    /// Reads only: no conflicting pair ever forms, no trap ever arms, and a
    /// batched runtime stays on the zero-shared-write path for the whole
    /// run. This is the shape that measures the fast path itself.
    ReadOnly,
}

/// One benchmark traffic shape: an object-space mask, a callsite count, and
/// an access mix.
#[derive(Debug, Clone, Copy)]
pub struct Shape {
    /// Stable name used in bench group ids and the gate's JSON.
    pub name: &'static str,
    /// Objects are `1 + (i & obj_mask)`: 0x7 = 8 hot objects, 0xFFFF = 64Ki.
    pub obj_mask: u64,
    /// Number of distinct interned callsites the workers rotate through.
    pub n_sites: u32,
    /// Operation mix.
    pub mix: AccessMix,
}

/// The three shapes the gate persists and checks.
pub const SHAPES: &[Shape] = &[
    Shape {
        name: "contended",
        obj_mask: 0x7,
        n_sites: 4,
        mix: AccessMix::Mixed,
    },
    Shape {
        name: "highcard",
        obj_mask: 0xFFFF,
        n_sites: 256,
        mix: AccessMix::Mixed,
    },
    Shape {
        name: "highcard_ro",
        obj_mask: 0xFFFF,
        n_sites: 256,
        mix: AccessMix::ReadOnly,
    },
];

/// Interns `n` distinct callsites for the worker loop to rotate through.
pub fn make_sites(n: u32) -> Arc<Vec<SiteId>> {
    Arc::new(
        (0..n)
            .map(|i| {
                SiteId::intern(SiteData {
                    file: "oncall_scaling.rs",
                    line: i + 1,
                    column: 1,
                })
            })
            .collect(),
    )
}

/// Runs `iters` total accesses split across `threads` workers and returns
/// the wall-clock span from the first worker starting to the last worker
/// finishing. Each worker walks its own stride of the object/site space so
/// the access stream is deterministic per thread count.
///
/// Every worker takes its own start/end timestamps; the span is
/// `max(end) − min(start)`. Timing from the coordinating thread would
/// undercount badly on machines with fewer cores than workers: after the
/// release barrier the scheduler can run the workers for milliseconds
/// before the coordinator gets the CPU back to read the clock.
pub fn run_workers(
    rt: &Arc<Runtime>,
    threads: usize,
    iters: u64,
    obj_mask: u64,
    sites: &Arc<Vec<SiteId>>,
    mix: AccessMix,
) -> Duration {
    let per_thread = iters.div_ceil(threads as u64).max(1);
    let gate = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rt = Arc::clone(rt);
            let gate = Arc::clone(&gate);
            let sites = Arc::clone(sites);
            thread::spawn(move || {
                // Offset each worker so they collide on objects rather than
                // marching in lockstep over disjoint ranges.
                let mut i = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                gate.wait();
                let start = Instant::now();
                for _ in 0..per_thread {
                    let obj = ObjId(1 + (i & obj_mask));
                    let site = sites[(i % sites.len() as u64) as usize];
                    let kind = match mix {
                        AccessMix::ReadOnly => OpKind::Read,
                        AccessMix::Mixed if i & 3 == 0 => OpKind::Write,
                        AccessMix::Mixed => OpKind::Read,
                    };
                    rt.on_call(std::hint::black_box(obj), site, "bench.op", kind);
                    i = i.wrapping_add(1);
                }
                (start, Instant::now())
            })
        })
        .collect();
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    for h in handles {
        let (start, end) = h.join().expect("bench worker panicked");
        first_start = Some(first_start.map_or(start, |s| s.min(start)));
        last_end = Some(last_end.map_or(end, |e| e.max(end)));
    }
    match (first_start, last_end) {
        (Some(start), Some(end)) => end.duration_since(start),
        _ => Duration::ZERO,
    }
}

/// Minimum per-access nanoseconds over `reps` repetitions of
/// `run_workers(threads, iters)` on a fresh runtime per rep (so table state
/// from a previous rep can't skew the next), with a warm-up long enough to
/// populate the per-object tracking tables (the high-cardinality shapes
/// touch 64Ki objects; measuring during table growth would make short runs
/// systematically slower per access than long ones).
///
/// The minimum — not the median — because this feeds a regression *gate*:
/// the fastest rep is the one least perturbed by scheduler noise and is by
/// far the most reproducible statistic on a loaded or single-core machine,
/// while still moving whenever the code genuinely gets slower.
pub fn measure_per_access_ns(
    factory: Factory,
    threads: usize,
    iters: u64,
    shape: &Shape,
    sites: &Arc<Vec<SiteId>>,
    reps: usize,
) -> f64 {
    (0..reps.max(1))
        .map(|_| {
            let rt = factory(no_delay_config());
            let warmup = (iters / 8).max(2 * (shape.obj_mask + 1)).max(1);
            run_workers(&rt, threads, warmup, shape.obj_mask, sites, shape.mix);
            let wall = run_workers(&rt, threads, iters, shape.obj_mask, sites, shape.mix);
            wall.as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}
