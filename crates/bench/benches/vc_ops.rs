//! Vector-clock representation micro-benchmarks (§3.5).
//!
//! Regenerates the cost model behind TSVD-HB's immutable AVL-map clocks:
//!
//! - **send** (message-passing copy): `O(1)` by-reference for immutable
//!   clocks vs. `O(n)` deep copy for mutable tables;
//! - **increment**: `O(log n)` immutable vs. `O(1)` mutable — the trade
//!   TSVD-HB accepts because increments only happen at TSVD points;
//! - **join**: `O(1)` reference-equality fast path vs. element-wise max.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsvd_vc::{ImmutableVc, MutableVc};

fn build_imm(n: u64) -> ImmutableVc {
    let mut vc = ImmutableVc::new();
    for id in 0..n {
        vc = vc.with(id, id + 1);
    }
    vc
}

fn build_mut(n: u64) -> MutableVc {
    let mut vc = MutableVc::new();
    for id in 0..n {
        vc.set(id, id + 1);
    }
    vc
}

fn bench_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("vc_send");
    for &n in &[8u64, 64, 512] {
        let imm = build_imm(n);
        g.bench_with_input(BenchmarkId::new("immutable", n), &imm, |b, vc| {
            b.iter(|| black_box(vc.clone()))
        });
        let mutable = build_mut(n);
        g.bench_with_input(BenchmarkId::new("mutable", n), &mutable, |b, vc| {
            b.iter(|| black_box(vc.clone()))
        });
    }
    g.finish();
}

fn bench_increment(c: &mut Criterion) {
    let mut g = c.benchmark_group("vc_increment");
    for &n in &[8u64, 64, 512] {
        let imm = build_imm(n);
        g.bench_with_input(BenchmarkId::new("immutable", n), &imm, |b, vc| {
            b.iter(|| black_box(vc.increment(n / 2)))
        });
        g.bench_with_input(BenchmarkId::new("mutable", n), &n, |b, &n| {
            let mut vc = build_mut(n);
            b.iter(|| {
                vc.increment(n / 2);
                black_box(vc.get(n / 2))
            })
        });
    }
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("vc_join");
    for &n in &[8u64, 64, 512] {
        // The fork/join-without-TSVD-points fast path: same object.
        let a = build_imm(n);
        let same = a.clone();
        g.bench_with_input(BenchmarkId::new("immutable_ref_eq", n), &n, |b, _| {
            b.iter(|| black_box(a.join(&same)))
        });
        // The general element-wise path.
        let other = build_imm(n).increment(0);
        g.bench_with_input(BenchmarkId::new("immutable_general", n), &n, |b, _| {
            b.iter(|| black_box(a.join(&other)))
        });
        let ma = build_mut(n);
        let mb = build_mut(n);
        g.bench_with_input(BenchmarkId::new("mutable", n), &n, |b, _| {
            b.iter(|| {
                let mut x = ma.clone();
                x.join_from(&mb);
                black_box(x)
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_send, bench_increment, bench_join
}
criterion_main!(benches);
