//! Multi-threaded `OnCall` throughput per detector.
//!
//! The single-threaded `oncall_overhead` bench hides the cost that matters
//! in production runs: every instrumented access from every thread funnels
//! through the runtime's shared state (trap table, near-miss tracker, phase
//! buffer, coverage stats). This bench drives `on_call` from 1/2/4/8 threads
//! concurrently and reports wall-clock time per access, so aggregate
//! throughput is `threads-agnostic`: if the hot path serializes on a lock,
//! per-access time grows with the thread count; if it scales, it stays flat.
//!
//! Three traffic shapes (the worker loop itself lives in `tsvd_bench` so
//! the CI regression gate measures exactly what this bench measures):
//! - `oncall_scaling/*`: 8 hot objects × 4 sites — maximum contention on
//!   whatever shared state the detector keeps per object.
//! - `oncall_scaling_highcard/*`: 64Ki distinct objects × 256 sites — the
//!   production shape (many locks, many callsites) that stresses table
//!   growth, eviction, and shard distribution rather than one hot entry.
//! - `oncall_scaling_highcard_ro/*`: the 64Ki shape with reads only — no
//!   conflicting pair ever forms, so a batched runtime never leaves the
//!   zero-shared-write fast path. This is the pure fast-path measurement.
//!
//! The `tsvd_batched` / `noop_batched` detectors run the same analysis with
//! thread-local event batching enabled (`batch_capacity > 0`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsvd_bench::{
    make_sites, no_delay_config, noop_batched, run_workers, tsvd_batched, AccessMix, Factory,
};
use tsvd_core::Runtime;

const DETECTORS: &[(&str, Factory)] = &[
    ("noop", Runtime::noop),
    ("noop_batched", noop_batched),
    ("dynamic_random", Runtime::dynamic_random),
    ("tsvd", Runtime::tsvd),
    ("tsvd_batched", tsvd_batched),
    ("tsvd_hb", Runtime::tsvd_hb),
];

fn bench_shape(c: &mut Criterion, group: &str, obj_mask: u64, n_sites: u32, mix: AccessMix) {
    let sites = make_sites(n_sites);
    let mut g = c.benchmark_group(group);
    for &(name, factory) in DETECTORS {
        for &threads in &[1usize, 2, 4, 8] {
            g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                // One runtime per benchmark point so table state from a
                // previous thread count can't skew this one.
                let rt = factory(no_delay_config());
                b.iter_custom(|iters| run_workers(&rt, threads, iters, obj_mask, &sites, mix));
            });
        }
    }
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    bench_shape(c, "oncall_scaling", 0x7, 4, AccessMix::Mixed);
}

fn bench_high_cardinality(c: &mut Criterion) {
    bench_shape(c, "oncall_scaling_highcard", 0xFFFF, 256, AccessMix::Mixed);
}

fn bench_high_cardinality_read_only(c: &mut Criterion) {
    bench_shape(
        c,
        "oncall_scaling_highcard_ro",
        0xFFFF,
        256,
        AccessMix::ReadOnly,
    );
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_contended, bench_high_cardinality, bench_high_cardinality_read_only
}
criterion_main!(benches);
