//! Multi-threaded `OnCall` throughput per detector.
//!
//! The single-threaded `oncall_overhead` bench hides the cost that matters
//! in production runs: every instrumented access from every thread funnels
//! through the runtime's shared state (trap table, near-miss tracker, phase
//! buffer, coverage stats). This bench drives `on_call` from 1/2/4/8 threads
//! concurrently and reports wall-clock time per access, so aggregate
//! throughput is `threads-agnostic`: if the hot path serializes on a lock,
//! per-access time grows with the thread count; if it scales, it stays flat.
//!
//! Two traffic shapes:
//! - `oncall_scaling/*`: 8 hot objects × 4 sites — maximum contention on
//!   whatever shared state the detector keeps per object.
//! - `oncall_scaling_highcard/*`: 64Ki distinct objects × 256 sites — the
//!   production shape (many locks, many callsites) that stresses table
//!   growth, eviction, and shard distribution rather than one hot entry.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsvd_core::site::{SiteData, SiteId};
use tsvd_core::{ObjId, OpKind, Runtime, TsvdConfig};

fn no_delay_config() -> TsvdConfig {
    let mut c = TsvdConfig::for_testing();
    // Zero budget: the planner still runs but no sleep is ever admitted, so
    // the numbers are pure analysis + synchronization cost.
    c.max_delay_per_run_ns = 0;
    c
}

fn make_sites(n: u32) -> Arc<Vec<SiteId>> {
    Arc::new(
        (0..n)
            .map(|i| {
                SiteId::intern(SiteData {
                    file: "oncall_scaling.rs",
                    line: i + 1,
                    column: 1,
                })
            })
            .collect(),
    )
}

/// Runs `iters` total accesses split across `threads` workers and returns
/// the wall-clock time from the moment all workers are released to the
/// moment the last one finishes. Thread spawn cost is excluded; each worker
/// walks its own stride of the object/site space so the access stream is
/// deterministic per thread count.
fn run_workers(
    rt: &Arc<Runtime>,
    threads: usize,
    iters: u64,
    obj_mask: u64,
    sites: &Arc<Vec<SiteId>>,
) -> Duration {
    let per_thread = iters.div_ceil(threads as u64).max(1);
    let gate = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let rt = Arc::clone(rt);
            let gate = Arc::clone(&gate);
            let sites = Arc::clone(sites);
            thread::spawn(move || {
                // Offset each worker so they collide on objects rather than
                // marching in lockstep over disjoint ranges.
                let mut i = (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                gate.wait();
                for _ in 0..per_thread {
                    let obj = ObjId(1 + (i & obj_mask));
                    let site = sites[(i % sites.len() as u64) as usize];
                    let kind = if i & 3 == 0 {
                        OpKind::Write
                    } else {
                        OpKind::Read
                    };
                    rt.on_call(black_box(obj), site, "bench.op", kind);
                    i = i.wrapping_add(1);
                }
            })
        })
        .collect();
    gate.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench worker panicked");
    }
    start.elapsed()
}

type Factory = fn(TsvdConfig) -> Arc<Runtime>;

const DETECTORS: &[(&str, Factory)] = &[
    ("noop", Runtime::noop),
    ("dynamic_random", Runtime::dynamic_random),
    ("tsvd", Runtime::tsvd),
    ("tsvd_hb", Runtime::tsvd_hb),
];

fn bench_shape(c: &mut Criterion, group: &str, obj_mask: u64, n_sites: u32) {
    let sites = make_sites(n_sites);
    let mut g = c.benchmark_group(group);
    for &(name, factory) in DETECTORS {
        for &threads in &[1usize, 2, 4, 8] {
            g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, &threads| {
                // One runtime per benchmark point so table state from a
                // previous thread count can't skew this one.
                let rt = factory(no_delay_config());
                b.iter_custom(|iters| run_workers(&rt, threads, iters, obj_mask, &sites));
            });
        }
    }
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    bench_shape(c, "oncall_scaling", 0x7, 4);
}

fn bench_high_cardinality(c: &mut Criterion) {
    bench_shape(c, "oncall_scaling_highcard", 0xFFFF, 256);
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_contended, bench_high_cardinality
}
criterion_main!(benches);
