//! Per-access `OnCall` analysis cost per detector.
//!
//! This is the instrumentation-cost comparison the suite tables cannot
//! show at millisecond scale: what one instrumented access costs under
//! each strategy, with delay injection disabled (zero delay budget) so the
//! numbers are pure analysis. Expected shape: Noop < DynamicRandom ≈
//! DataCollider < TSVD < TSVD-HB — the paper's point that full vector-clock
//! analysis is an order of magnitude more work per access than TSVD's
//! near-miss bookkeeping.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsvd_core::{ObjId, OpKind, Runtime, TsvdConfig};

fn no_delay_config() -> TsvdConfig {
    let mut c = TsvdConfig::for_testing();
    // Zero budget: should_delay may fire but no sleep is ever admitted.
    c.max_delay_per_run_ns = 0;
    c
}

fn bench_detector(c: &mut Criterion, name: &str, rt: Arc<Runtime>) {
    let site_a = tsvd_core::site!();
    let site_b = tsvd_core::site!();
    c.bench_function(&format!("oncall/{name}"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            // Alternate objects and sites so trackers do real work.
            let obj = ObjId(1 + (i & 7));
            let site = if i & 1 == 0 { site_a } else { site_b };
            let kind = if i & 3 == 0 {
                OpKind::Write
            } else {
                OpKind::Read
            };
            rt.on_call(black_box(obj), site, "bench.op", kind);
            i = i.wrapping_add(1);
        })
    });
}

fn bench_oncall(c: &mut Criterion) {
    bench_detector(c, "noop", Runtime::noop(no_delay_config()));
    bench_detector(
        c,
        "dynamic_random",
        Runtime::dynamic_random(no_delay_config()),
    );
    bench_detector(c, "datacollider", Runtime::static_random(no_delay_config()));
    bench_detector(c, "tsvd", Runtime::tsvd(no_delay_config()));
    bench_detector(c, "tsvd_hb", Runtime::tsvd_hb(no_delay_config()));
}

/// The §2.3 traffic shape: synchronization operations (task forks, joins,
/// ends) outnumber instrumented accesses. TSVD ignores the sync stream by
/// design; TSVD-HB must run vector-clock transfers for every event — this
/// is where its analysis overhead lives.
fn bench_sync_heavy(c: &mut Criterion, name: &str, rt: Arc<Runtime>) {
    use tsvd_core::context::ContextId;
    use tsvd_core::SyncEvent;
    let site = tsvd_core::site!();
    c.bench_function(&format!("oncall_sync_heavy/{name}"), |b| {
        let mut i = 0u64;
        b.iter(|| {
            // One access per four synchronization events (fork, end, join).
            let parent = ContextId(1 + (i & 3));
            let child = ContextId(1000 + (i & 255));
            rt.on_sync(SyncEvent::Fork { parent, child });
            rt.on_call(
                black_box(ObjId(1 + (i & 7))),
                site,
                "bench.op",
                OpKind::Write,
            );
            rt.on_sync(SyncEvent::TaskEnd { context: child });
            rt.on_sync(SyncEvent::Join {
                waiter: parent,
                target: child,
            });
            i = i.wrapping_add(1);
        })
    });
}

fn bench_oncall_sync(c: &mut Criterion) {
    bench_sync_heavy(c, "tsvd", Runtime::tsvd(no_delay_config()));
    bench_sync_heavy(c, "tsvd_hb", Runtime::tsvd_hb(no_delay_config()));
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_oncall, bench_oncall_sync
}
criterion_main!(benches);
