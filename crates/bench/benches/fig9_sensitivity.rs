//! Figure 9 as a benchmark: TSVD suite wall time at selected parameter
//! extremes.
//!
//! One sample = one suite pass under TSVD with one knob moved off its
//! default. The decay-factor-0 row is the pathological configuration the
//! paper singles out (up to 66× overhead on delay-hungry modules).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsvd_core::TsvdConfig;
use tsvd_harness::runner::{run_suite, DetectorKind, RunOptions};
use tsvd_workloads::suite::{build_suite, SuiteConfig};

/// One sensitivity row: a label plus the knob tweak it applies.
type Setting = (&'static str, Box<dyn Fn(&mut TsvdConfig)>);

fn bench_sensitivity(c: &mut Criterion) {
    let suite = build_suite(SuiteConfig {
        modules: 25,
        seed: 0xF19,
    });
    let base = RunOptions {
        config: TsvdConfig::paper().scaled(0.01),
        threads: 2,
        runs: 1,
        shared_trap_file: false,
        module_deadline: None,
        static_priors: None,
    };

    let settings: Vec<Setting> = vec![
        ("default", Box::new(|_| {})),
        ("decay_0", Box::new(|c| c.decay_factor = 0.0)),
        ("decay_0.8", Box::new(|c| c.decay_factor = 0.8)),
        ("no_windowing", Box::new(|c| c.enable_windowing = false)),
        (
            "no_hb_inference",
            Box::new(|c| c.enable_hb_inference = false),
        ),
        ("delay_x4", Box::new(|c| c.delay_ns *= 4)),
    ];

    let mut g = c.benchmark_group("fig9_tsvd_pass");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    for (name, tweak) in &settings {
        let mut options = base.clone();
        tweak(&mut options.config);
        g.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, o| {
            b.iter(|| black_box(run_suite(&suite, DetectorKind::Tsvd, o).total_bugs()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sensitivity);
criterion_main!(benches);
