//! Table 2 as a benchmark: end-to-end suite wall time per detector.
//!
//! One Criterion sample = one full pass of a small generated suite under
//! the detector (1 run, real delay injection). The relative times are the
//! overhead column of Table 2 in benchmark form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsvd_core::TsvdConfig;
use tsvd_harness::runner::{run_suite, DetectorKind, RunOptions};
use tsvd_workloads::suite::{build_suite, SuiteConfig};

fn bench_suite(c: &mut Criterion) {
    let suite = build_suite(SuiteConfig {
        modules: 25,
        seed: 0xBE7C,
    });
    let options = RunOptions {
        config: TsvdConfig::paper().scaled(0.01),
        threads: 2,
        runs: 1,
        shared_trap_file: false,
        // No watched thread in benches: measure the runner itself.
        module_deadline: None,
        static_priors: None,
    };
    let mut g = c.benchmark_group("table2_suite_pass");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(4));
    for kind in [
        DetectorKind::Noop,
        DetectorKind::DynamicRandom,
        DetectorKind::DataCollider,
        DetectorKind::TsvdHb,
        DetectorKind::Tsvd,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| black_box(run_suite(&suite, k, &options).total_bugs()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
