//! # TSVD-RS
//!
//! A from-scratch Rust reproduction of *"Efficient Scalable Thread-Safety-
//! Violation Detection: Finding thousands of concurrency bugs during
//! testing"* (SOSP 2019).
//!
//! TSVD is an *active testing* tool: it watches calls into thread-unsafe
//! APIs, identifies pairs of program locations that nearly collide on the
//! same object, injects delays at those locations to force a real
//! collision, and reports a thread-safety violation (TSV) only when two
//! threads are caught red-handed — so every report is a true bug.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`core`](tsvd_core) — the detection algorithms (trap framework,
//!   near-miss tracking, HB inference, decay, the detector variants);
//! - [`collections`](tsvd_collections) — instrumented thread-unsafe
//!   collections (`Dictionary`, `List`, ...);
//! - [`tasks`](tsvd_tasks) — the task-parallel substrate (pool, first-class
//!   join handles, `parallel_for_each`, instrumented locks);
//! - [`vc`](tsvd_vc) — immutable AVL-map vector clocks (TSVD-HB);
//! - [`workloads`](tsvd_workloads) — the planted-bug benchmark corpus;
//! - [`harness`](tsvd_harness) — the experiment runner regenerating every
//!   table and figure of the paper's evaluation;
//! - [`fleet`](tsvd_fleet) — fault-tolerant multi-process fleet mode:
//!   supervised workers with retry, quarantine, and a crash-resumable
//!   write-ahead ledger.
//!
//! # Examples
//!
//! The Fig. 1 bug, detected in one test run:
//!
//! ```
//! use tsvd::prelude::*;
//!
//! let rt = Runtime::tsvd(TsvdConfig::for_testing());
//! let pool = Pool::with_runtime(2, rt.clone());
//! let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
//!
//! for round in 0..20u64 {
//!     let d1 = dict.clone();
//!     let writer = pool.spawn(move || d1.add(round, round)); // Thread 1.
//!     let d2 = dict.clone();
//!     let reader = pool.spawn(move || d2.contains_key(&(round + 1_000))); // Thread 2.
//!     writer.wait();
//!     reader.wait();
//! }
//! // Whether the trap fired this quickly is timing-dependent, but any
//! // report is guaranteed to be a true violation.
//! for v in rt.reports().violations() {
//!     assert!(v.trapped.kind.conflicts_with(v.hitter.kind));
//! }
//! ```

#![warn(missing_docs)]

pub use tsvd_analyze as analyze;
pub use tsvd_collections as collections;
pub use tsvd_core as core;
pub use tsvd_fleet as fleet;
pub use tsvd_harness as harness;
pub use tsvd_tasks as tasks;
pub use tsvd_vc as vc;
pub use tsvd_workloads as workloads;

/// The most common imports, in one place.
pub mod prelude {
    pub use tsvd_collections::{
        BitArray, Cache, Dictionary, HashSet, LinkedDeque, List, MultiMap, PriorityQueue, Queue,
        SortedList, SortedSet, Stack, StringBuilder,
    };
    pub use tsvd_core::{ObjId, OpKind, ReportSink, Runtime, SiteId, TsvdConfig, Violation};
    pub use tsvd_tasks::{parallel_for_each, parallel_invoke, JoinHandle, Pool, TsvdMutex};
}
