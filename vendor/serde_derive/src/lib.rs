//! Offline stand-in for `serde_derive`.
//!
//! Derives the stub `serde::Serialize` / `serde::Deserialize` traits (the
//! `to_value` / `from_value` pair) for plain named-field structs. The input
//! is parsed directly from the raw `TokenStream` — no `syn`/`quote`, since
//! the build container has no registry access. Enums, tuple structs,
//! generics, and `#[serde(...)]` attributes are intentionally unsupported;
//! the workspace's serialized types are all simple named-field structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (`fn to_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let inserts: String = s
        .fields
        .iter()
        .map(|f| {
            format!("map.insert(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}));\n")
        })
        .collect();
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut map = std::collections::BTreeMap::new();\n\
                 {inserts}\
                 serde::Value::Object(map)\n\
             }}\n\
         }}\n",
        name = s.name,
        inserts = inserts,
    );
    out.parse()
        .expect("serde_derive: generated impl must parse")
}

/// Derives `serde::Deserialize` (`fn from_value(&Value) -> Result<Self, _>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let fields: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value(\
                     serde::__private::field(map, \"{name}\", \"{f}\")?\
                 )?,\n",
                name = s.name,
            )
        })
        .collect();
    let out = format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 let map = value.as_object().ok_or_else(|| \
                     serde::Error::msg(\"{name}: expected object\"))?;\n\
                 Ok({name} {{\n\
                     {fields}\
                 }})\n\
             }}\n\
         }}\n",
        name = s.name,
        fields = fields,
    );
    out.parse()
        .expect("serde_derive: generated impl must parse")
}

struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and its named-field identifiers from a
/// `DeriveInput`-shaped token stream:
/// `(#[attr])* (pub)? struct Name { (pub)? field: Type, ... }`.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#` punct followed by a bracketed group) and
    // visibility / struct keywords until the struct's identifier.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the `[...]` group
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "pub" {
                    // `pub(crate)` carries a parenthesized group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                } else if id == "struct" {
                    match tokens.next() {
                        Some(TokenTree::Ident(n)) => {
                            name = Some(n.to_string());
                            break;
                        }
                        other => panic!("serde_derive: expected struct name, got {other:?}"),
                    }
                } else if id == "enum" || id == "union" {
                    panic!("serde_derive stub supports only named-field structs, got `{id}`");
                }
            }
            _ => {}
        }
    }
    let name = name.expect("serde_derive: no `struct` keyword found");

    // The next brace-delimited group is the field list.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive stub does not support generic structs")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive stub does not support tuple/unit structs")
            }
            Some(_) => {}
            None => panic!("serde_derive: struct `{name}` has no braced field list"),
        }
    };

    // Within the body, each field is `(#[attr])* (pub)? ident : Type`,
    // separated by top-level commas. Only the identifier before each `:` at
    // angle-bracket depth 0 matters.
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<String> = None;
    let mut field_taken = false;
    let mut body_tokens = body.stream().into_iter().peekable();
    while let Some(tt) = body_tokens.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    pending = None;
                    field_taken = false;
                }
                ':' if depth == 0 && !field_taken => {
                    // `::` in a type path must not end field scanning; only a
                    // single colon directly after the field name does.
                    if let Some(TokenTree::Punct(next)) = body_tokens.peek() {
                        if next.as_char() == ':' {
                            body_tokens.next();
                            continue;
                        }
                    }
                    if let Some(f) = pending.take() {
                        fields.push(f);
                        field_taken = true;
                    }
                }
                '#' => {
                    body_tokens.next(); // field attribute group
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && !field_taken => {
                let id = id.to_string();
                if id != "pub" {
                    pending = Some(id);
                } else if let Some(TokenTree::Group(g)) = body_tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        body_tokens.next();
                    }
                }
            }
            _ => {}
        }
    }

    StructDef { name, fields }
}
