//! Offline stand-in for `serde_derive`.
//!
//! Derives the stub `serde::Serialize` / `serde::Deserialize` traits (the
//! `to_value` / `from_value` pair) for plain named-field structs. The input
//! is parsed directly from the raw `TokenStream` — no `syn`/`quote`, since
//! the build container has no registry access. Enums, tuple structs, and
//! generics are intentionally unsupported; the workspace's serialized types
//! are all simple named-field structs.
//!
//! Of serde's field attributes, exactly two spellings are honored —
//! `#[serde(default)]` and `#[serde(default = "path::to::fn")]` — so that
//! persisted formats (configs, trap files, durable sinks) can grow new
//! fields without breaking deserialization of files written by older
//! builds. Any other `#[serde(...)]` content is ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (`fn to_value(&self) -> serde::Value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let inserts: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "map.insert(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}));\n",
                f = f.name
            )
        })
        .collect();
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut map = std::collections::BTreeMap::new();\n\
                 {inserts}\
                 serde::Value::Object(map)\n\
             }}\n\
         }}\n",
        name = s.name,
        inserts = inserts,
    );
    out.parse()
        .expect("serde_derive: generated impl must parse")
}

/// Derives `serde::Deserialize` (`fn from_value(&Value) -> Result<Self, _>`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let fields: String = s
        .fields
        .iter()
        .map(|f| match &f.default {
            None => format!(
                "{f}: serde::Deserialize::from_value(\
                     serde::__private::field(map, \"{name}\", \"{f}\")?\
                 )?,\n",
                name = s.name,
                f = f.name,
            ),
            Some(spec) => {
                let fallback = match spec {
                    DefaultSpec::Trait => "Default::default()".to_string(),
                    DefaultSpec::Path(p) => format!("{p}()"),
                };
                format!(
                    "{f}: match serde::__private::opt_field(map, \"{f}\") {{\n\
                         Some(v) => serde::Deserialize::from_value(v)?,\n\
                         None => {fallback},\n\
                     }},\n",
                    f = f.name,
                    fallback = fallback,
                )
            }
        })
        .collect();
    let out = format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 let map = value.as_object().ok_or_else(|| \
                     serde::Error::msg(\"{name}: expected object\"))?;\n\
                 Ok({name} {{\n\
                     {fields}\
                 }})\n\
             }}\n\
         }}\n",
        name = s.name,
        fields = fields,
    );
    out.parse()
        .expect("serde_derive: generated impl must parse")
}

/// How a missing field is filled during deserialization.
enum DefaultSpec {
    /// `#[serde(default)]` — `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` — call the named function.
    Path(String),
}

struct FieldDef {
    name: String,
    default: Option<DefaultSpec>,
}

struct StructDef {
    name: String,
    fields: Vec<FieldDef>,
}

/// Recognizes `[serde(default)]` / `[serde(default = "path")]` in a field
/// attribute's bracketed group, returning the default spec if present.
fn parse_serde_default(group: &proc_macro::Group) -> Option<DefaultSpec> {
    if group.delimiter() != Delimiter::Bracket {
        return None;
    }
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let mut inner = args.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    match inner.next() {
        None => Some(DefaultSpec::Trait),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match inner.next() {
            Some(TokenTree::Literal(lit)) => {
                let raw = lit.to_string();
                let path = raw.trim_matches('"').to_string();
                Some(DefaultSpec::Path(path))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Extracts the struct name and its named-field identifiers (plus any
/// `#[serde(default)]` specs) from a `DeriveInput`-shaped token stream:
/// `(#[attr])* (pub)? struct Name { (#[attr])* (pub)? field: Type, ... }`.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#` punct followed by a bracketed group) and
    // visibility / struct keywords until the struct's identifier.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the `[...]` group
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                if id == "pub" {
                    // `pub(crate)` carries a parenthesized group.
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                } else if id == "struct" {
                    match tokens.next() {
                        Some(TokenTree::Ident(n)) => {
                            name = Some(n.to_string());
                            break;
                        }
                        other => panic!("serde_derive: expected struct name, got {other:?}"),
                    }
                } else if id == "enum" || id == "union" {
                    panic!("serde_derive stub supports only named-field structs, got `{id}`");
                }
            }
            _ => {}
        }
    }
    let name = name.expect("serde_derive: no `struct` keyword found");

    // The next brace-delimited group is the field list.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive stub does not support generic structs")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive stub does not support tuple/unit structs")
            }
            Some(_) => {}
            None => panic!("serde_derive: struct `{name}` has no braced field list"),
        }
    };

    // Within the body, each field is `(#[attr])* (pub)? ident : Type`,
    // separated by top-level commas. Only the identifier before each `:` at
    // angle-bracket depth 0 matters; field attributes are scanned for
    // `serde(default)` specs, which attach to the next field name.
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut pending: Option<String> = None;
    let mut pending_default: Option<DefaultSpec> = None;
    let mut field_taken = false;
    let mut body_tokens = body.stream().into_iter().peekable();
    while let Some(tt) = body_tokens.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    pending = None;
                    pending_default = None;
                    field_taken = false;
                }
                ':' if depth == 0 && !field_taken => {
                    // `::` in a type path must not end field scanning; only a
                    // single colon directly after the field name does.
                    if let Some(TokenTree::Punct(next)) = body_tokens.peek() {
                        if next.as_char() == ':' {
                            body_tokens.next();
                            continue;
                        }
                    }
                    if let Some(f) = pending.take() {
                        fields.push(FieldDef {
                            name: f,
                            default: pending_default.take(),
                        });
                        field_taken = true;
                    }
                }
                '#' => {
                    // Field attribute group: keep any serde(default) spec.
                    if let Some(TokenTree::Group(g)) = body_tokens.next() {
                        if let Some(spec) = parse_serde_default(&g) {
                            pending_default = Some(spec);
                        }
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && !field_taken => {
                let id = id.to_string();
                if id != "pub" {
                    pending = Some(id);
                } else if let Some(TokenTree::Group(g)) = body_tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        body_tokens.next();
                    }
                }
            }
            _ => {}
        }
    }

    StructDef { name, fields }
}
