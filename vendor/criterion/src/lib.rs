//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::{iter, iter_custom}`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! calibrated harness: grow the iteration count until a sample is long
//! enough to time reliably, take `sample_size` samples, report
//! min/median/max per-iteration time. No statistics beyond that, no HTML
//! reports, no baseline storage; numbers go to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use either `criterion::black_box` or
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy)]
struct Cfg {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Cfg {
    fn default() -> Self {
        Cfg {
            sample_size: 20,
            measurement_time: Duration::from_millis(700),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

/// Benchmark driver, configured with builder-style methods.
#[derive(Default)]
pub struct Criterion {
    cfg: Cfg,
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Total time budget spread across the samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Calibration/warm-up budget before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, self.cfg, f);
        self
    }

    /// Opens a named group; benchmarks in it are labelled `group/<id>`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let cfg = self.cfg;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            cfg,
        }
    }
}

/// A labelled set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    cfg: Cfg,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Overrides the warm-up budget for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), self.cfg, f);
        self
    }

    /// Runs one benchmark with an input value passed to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.label), self.cfg, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Handed to the benchmark closure; call [`iter`](Bencher::iter) or
/// [`iter_custom`](Bencher::iter_custom) exactly once.
pub struct Bencher {
    cfg: Cfg,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `f` per call: calibrates an iteration count, then takes
    /// `sample_size` timed batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        self.iter_custom(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed()
        });
    }

    /// Like `iter`, but the closure runs `iters` iterations itself and
    /// returns only the elapsed time it wants measured (used by benches that
    /// must exclude setup such as thread spawning).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one call is long enough to time
        // (>= 1/8 of the warm-up budget, min 1ms), doubling from 1.
        let floor = (self.cfg.warm_up_time / 8).max(Duration::from_millis(1));
        let mut iters: u64 = 1;
        let mut elapsed = f(iters);
        let calibration_start = Instant::now();
        while elapsed < floor && iters < (1 << 40) {
            let grow = if elapsed.as_nanos() == 0 {
                16
            } else {
                // Aim directly for the floor, capped at 16x per step.
                ((floor.as_nanos() / elapsed.as_nanos().max(1)) + 1).min(16) as u64
            };
            iters = iters.saturating_mul(grow);
            elapsed = f(iters);
        }
        // Burn the rest of the warm-up budget at the calibrated batch size.
        while calibration_start.elapsed() < self.cfg.warm_up_time {
            f(iters);
        }

        // Scale the batch so sample_size batches fill measurement_time.
        let per_iter_ns = elapsed.as_nanos().max(1) as f64 / iters as f64;
        let budget_ns = self.cfg.measurement_time.as_nanos() as f64;
        let ideal = budget_ns / self.cfg.sample_size as f64 / per_iter_ns;
        let batch = (ideal as u64).clamp(1, 1 << 40);

        self.samples_ns_per_iter = (0..self.cfg.sample_size)
            .map(|_| f(batch).as_nanos() as f64 / batch as f64)
            .collect();
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(label: &str, cfg: Cfg, f: F) {
    let mut b = Bencher {
        cfg,
        samples_ns_per_iter: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples_ns_per_iter;
    if s.is_empty() {
        println!("{label:<48} (no measurement taken)");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let min = s[0];
    let median = s[s.len() / 2];
    let max = s[s.len() - 1];
    println!(
        "{label:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions; supports both criterion forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_sane_times() {
        let cfg = Cfg {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut b = Bencher {
            cfg,
            samples_ns_per_iter: Vec::new(),
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples_ns_per_iter.len(), 5);
        // A multiply can't plausibly take more than a microsecond per iter.
        assert!(b
            .samples_ns_per_iter
            .iter()
            .all(|&ns| ns > 0.0 && ns < 1_000.0));
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let cfg = Cfg {
            sample_size: 3,
            measurement_time: Duration::from_millis(6),
            warm_up_time: Duration::from_millis(2),
        };
        let mut b = Bencher {
            cfg,
            samples_ns_per_iter: Vec::new(),
        };
        // Claim exactly 100ns per iteration regardless of wall time.
        b.iter_custom(|iters| Duration::from_nanos(100 * iters));
        assert!(b
            .samples_ns_per_iter
            .iter()
            .all(|&ns| (ns - 100.0).abs() < 1.0));
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 8).label, "f/8");
        assert_eq!(BenchmarkId::from_parameter("tsvd").label, "tsvd");
    }
}
