//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is used by this
//! workspace (the task pool's job queue), so only that surface is provided:
//! an unbounded MPMC channel over `Mutex<VecDeque>` + `Condvar`, with
//! disconnect-on-last-sender-drop semantics matching crossbeam's.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    ///
    /// (The stub never reports it — receivers here outlive senders — but the
    /// type keeps the `Result` signature source-compatible.)
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        // No `T: Debug` bound, matching crossbeam: the payload may be an
        // unprintable closure.
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel. Cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so its
                // `recv` can observe the disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues a value if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Returns `true` if no value is currently queued.
        pub fn is_empty(&self) -> bool {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let t = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(5));
            drop(tx);
            assert_eq!(t.join().expect("no panic"), Err(RecvError));
        }

        #[test]
        fn mpmc_consumes_each_value_once() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let t = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            let mut all = got;
            all.extend(t.join().expect("no panic"));
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn try_recv_states() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
