//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of `rand` it uses: `SmallRng` seeded with `seed_from_u64`, `gen`,
//! `gen_bool`, and `gen_range` over integer and float ranges. The generator
//! is xoshiro256** seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit targets, so statistical quality is
//! comparable; streams are deterministic per seed but not bit-identical to
//! upstream `rand` (nothing in this workspace depends on upstream streams).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types a generator can be asked to produce via [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Samples uniformly from `[low, high)`; `high > low`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Returns `self + 1`, saturating.
    fn saturating_succ(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // 128-bit multiply-shift (Lemire): unbiased enough for the
                // simulation workloads here, no modulo hot loop.
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
            fn saturating_succ(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        // `hi + 1` may overflow for the full domain; saturate and accept the
        // one-in-2^64 edge rather than a rejection loop.
        T::sample_range(rng, lo, hi.saturating_succ())
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience: a generator seeded from the OS clock (subset of
/// `rand::thread_rng`, without thread-local caching).
pub fn thread_rng() -> rngs::SmallRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::SmallRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_exclusive_bounds() {
        let mut r = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.gen_range(3..10u64);
            assert!((3..10).contains(&x));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut r = SmallRng::seed_from_u64(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match r.gen_range(0..=3u32) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                1 | 2 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_range_usize_for_indexing() {
        let mut r = SmallRng::seed_from_u64(17);
        let v = [10, 20, 30];
        for _ in 0..100 {
            let i = r.gen_range(0..v.len());
            assert!(i < v.len());
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = SmallRng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
