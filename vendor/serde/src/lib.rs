//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the workspace vendors a
//! minimal serde-shaped stack: [`Serialize`]/[`Deserialize`] convert to and
//! from a JSON-shaped [`Value`] tree, the companion `serde_derive` crate
//! provides `#[derive(Serialize, Deserialize)]` for named-field structs, and
//! `serde_json` renders/parses the tree. The trait *signatures* are not
//! upstream serde's (no `Serializer`/`Visitor` plumbing); only the names and
//! derive spellings used by this workspace are source-compatible.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (kept exact; `u64::MAX` survives round-trips).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, with stable (insertion-independent) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the object map if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- Scalar impls -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(Error::msg(format!("expected unsigned, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("unsigned out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| Error::msg("signed overflow"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::msg(format!("expected integer, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(std::path::PathBuf::from)
    }
}

// --- Composite impls --------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::msg("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::msg("expected 3-element array")),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Support module used by `serde_derive`-generated code.
pub mod __private {
    use super::{Error, Value};
    use std::collections::BTreeMap;

    /// Looks up `key` in a derive-target object, with a precise error.
    pub fn field<'v>(
        map: &'v BTreeMap<String, Value>,
        type_name: &str,
        key: &str,
    ) -> Result<&'v Value, Error> {
        map.get(key)
            .ok_or_else(|| Error::msg(format!("{type_name}: missing field `{key}`")))
    }

    /// Looks up `key`, returning `None` when absent — the lookup behind
    /// `#[serde(default)]` fields, which tolerate files written before the
    /// field existed.
    pub fn opt_field<'v>(map: &'v BTreeMap<String, Value>, key: &str) -> Option<&'v Value> {
        map.get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_max_survives() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v), Ok(u64::MAX));
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<String> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<String>::from_value(&Value::Null), Ok(None));
        let some = Some("x".to_string());
        assert_eq!(
            Option::<String>::from_value(&some.to_value()),
            Ok(Some("x".to_string()))
        );
    }

    #[test]
    fn tuple_as_array() {
        let pair = ("a".to_string(), "b".to_string());
        let v = pair.to_value();
        assert_eq!(<(String, String)>::from_value(&v), Ok(pair));
    }

    #[test]
    fn wrong_shape_errors() {
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(u32::from_value(&Value::UInt(1 << 40)).is_err());
    }
}
