//! Offline stand-in for `serde_json`.
//!
//! Renders the stub `serde::Value` tree to JSON text and parses it back with
//! a small recursive-descent parser. Covers the subset of JSON the workspace
//! emits: objects, arrays, strings (with escapes), integers, floats, bools,
//! and null.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

// --- Writer -----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so the value re-parses as a float.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not emitted by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>(" true ").unwrap());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_value_round_trips() {
        let v = Value::Object(
            [
                (
                    "list".to_string(),
                    Value::Array(vec![Value::UInt(1), Value::Str("two".into()), Value::Null]),
                ),
                ("flag".to_string(), Value::Bool(false)),
            ]
            .into_iter()
            .collect(),
        );
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str::<Value>(&rendered).unwrap(), v);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object([("k".to_string(), Value::UInt(1))].into_iter().collect());
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": 1"), "got: {pretty}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,").is_err());
    }

    #[test]
    fn floats_keep_decimal_point() {
        let json = to_string(&3.0f64).unwrap();
        assert_eq!(json, "3.0");
        assert_eq!(from_str::<f64>(&json).unwrap(), 3.0);
    }
}
