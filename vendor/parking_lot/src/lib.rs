//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! subset of the `parking_lot` 0.12 API it actually uses, implemented over
//! `std::sync`. Semantics match parking_lot where they matter to this repo:
//! no lock poisoning (a panicked holder does not wedge the lock), guards are
//! `Deref`/`DerefMut`, and `Condvar` waits take the guard by `&mut`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` lets [`Condvar`] temporarily take
/// the underlying std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Returns `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// One-time initialization flag (subset of `parking_lot::Once`).
pub struct Once {
    done: AtomicBool,
    lock: Mutex<()>,
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Once {
        Once {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once(&self, f: impl FnOnce()) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock();
        if !self.done.load(Ordering::Relaxed) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "no poisoning semantics");
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                let res = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                if res.timed_out() {
                    break;
                }
            }
            *done
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_one();
        assert!(t.join().expect("no panic"));
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
