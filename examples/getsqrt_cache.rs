//! The `getSqrt` cache of Fig. 3/4, and why forced-async matters (§4).
//!
//! `get_sqrt` checks a shared cache, computes in a background task on a
//! miss, and stores the result after the await. Two concurrent calls race
//! `Cache.put` against `Cache.put`/`Cache.contains_key` (nodes 9a/9b and
//! 9a/3b of the paper's Fig. 4).
//!
//! The twist this example demonstrates: with the .NET-style optimization
//! that runs *fast* async functions synchronously (`force_async = false`),
//! the whole computation serializes in test settings and the bug cannot
//! manifest — which is exactly why TSVD's instrumentation forces all async
//! functions to run asynchronously.
//!
//! ```text
//! cargo run --release --example getsqrt_cache
//! ```

use std::sync::Arc;
use std::time::Duration;

use tsvd::prelude::*;

fn get_sqrt(pool: &Arc<Pool>, cache: &Cache<u64, u64>, x: u64) -> u64 {
    if cache.contains_key(&x) {
        return cache.get(&x).unwrap_or_default(); // Fetch from cache (l.3–4).
    }
    let t = pool.spawn_fast(move || {
        // Background work (l.6–7) — "fast" because tests mock the I/O.
        std::thread::sleep(Duration::from_micros(300));
        (x as f64).sqrt().to_bits()
    });
    let s = t.join(); // await (l.8).
    cache.put(x, s); // Save to cache (l.9) — the racy write.
    s
}

fn race_rounds(rt: &Arc<Runtime>, force_async: bool, rounds: u64) -> usize {
    let pool = Arc::new(Pool::with_runtime(3, rt.clone()));
    pool.set_force_async(force_async);
    let cache: Cache<u64, u64> = Cache::new(rt);
    for round in 0..rounds {
        let (a, b) = (round * 2, round * 2 + 1);
        let (p1, c1) = (pool.clone(), cache.clone());
        let sqrt_a = pool.spawn(move || get_sqrt(&p1, &c1, a));
        let (p2, c2) = (pool.clone(), cache.clone());
        let sqrt_b = pool.spawn(move || get_sqrt(&p2, &c2, b));
        let _ = sqrt_a.join() + sqrt_b.join(); // Blocks (l.15–16).
    }
    rt.reports().unique_bugs()
}

fn main() {
    println!("=== getSqrt cache (Fig. 3/4) ===");
    let config = TsvdConfig::paper().scaled(0.05);

    // With forced async (TSVD's instrumentation): the continuations overlap
    // and the put/put + put/contains_key TSVs are exposed.
    let rt_forced = Runtime::tsvd(config.clone());
    let bugs_forced = race_rounds(&rt_forced, true, 40);
    println!(
        "forced-async : bugs={} delays={}",
        bugs_forced,
        rt_forced.stats().delays_injected()
    );

    println!(
        "\nThe paper's Fig. 4 pairs correspond to Cache.put/Cache.put and\n\
         Cache.put/Cache.contains_key; found pairs:"
    );
    for v in rt_forced.reports().violations() {
        println!(
            "  {} / {}{}",
            v.trapped.op_name,
            v.hitter.op_name,
            if v.is_read_write() {
                "  (read-write)"
            } else {
                ""
            }
        );
    }

    println!(
        "\nNote: under the .NET fast-path optimization (force_async=false),\n\
         mocked-I/O tasks run synchronously in the caller, the continuations\n\
         serialize, and these bugs cannot manifest in tests — which is why\n\
         TSVD's instrumentation forces genuine asynchrony (§4)."
    );
}
