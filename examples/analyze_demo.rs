//! Static-then-dynamic demo: `tsvd-analyze` predicts a dangerous pair
//! from source, and the seeded detector catches it in the *first* run.
//!
//! The workload here is deliberately hostile to purely dynamic detection:
//! each task touches the shared dictionary exactly once per process, so
//! the near miss that would arm the pair is also the last access — an
//! unseeded run can observe but never trap (§3.4.6 of the paper). The
//! static front end closes that gap: it reads *this file*, emits the pair
//! with the same `file:line:column` site ids `#[track_caller]` produces,
//! and the pre-armed trap fires on the first and only execution.
//!
//! ```text
//! cargo run --release --example analyze_demo
//! ```

use std::path::Path;

use tsvd::prelude::*;

/// This file, as both the analyzer input and the runtime's caller path.
const SELF_PATH: &str = "examples/analyze_demo.rs";

/// The buggy "test": two tasks, one conflicting write each — no retries.
fn run_once(rt: &std::sync::Arc<Runtime>) {
    let pool = Pool::with_runtime(2, rt.clone());
    let settings: Dictionary<String, u64> = Dictionary::new(rt);
    let s1 = settings.clone();
    let writer = pool.spawn(move || s1.set("timeout".into(), 30));
    let s2 = settings.clone();
    let racer = pool.spawn(move || s2.set("timeout".into(), 60));
    writer.wait();
    racer.wait();
}

fn main() {
    println!("=== tsvd-analyze demo: static priors remove the warm-up run ===\n");

    // Phase 1 — static: lex this file, find sites and dangerous pairs.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report =
        tsvd::analyze::analyze_paths(root, &[SELF_PATH.to_string()]).expect("analyze own source");
    println!("static sites found:");
    for site in &report.sites {
        println!(
            "  {:<28} {}.{} ({:?})",
            site.site_text(),
            site.class,
            site.method,
            site.kind
        );
    }
    println!("\nstatic dangerous-pair candidates:");
    for pair in &report.pairs {
        println!("  {} <-> {}  [{}]", pair.first, pair.second, pair.reason);
    }
    let priors = report.to_trap_file();

    // Phase 2 — dynamic, unseeded: the pair runs once, so nothing traps.
    let config = TsvdConfig::paper().scaled(0.05); // 5 ms delays.
    let unseeded = Runtime::tsvd(config.clone());
    run_once(&unseeded);
    println!(
        "\nunseeded first run : {} violation(s) (the near miss is the last \
         access — nothing left to trap)",
        unseeded.reports().unique_bugs()
    );

    // Phase 3 — dynamic, seeded with the static pairs: caught first run.
    let seeded = Runtime::tsvd(config);
    seeded.import_trap_file(&priors);
    run_once(&seeded);
    let sink = seeded.reports();
    println!("seeded first run   : {} violation(s)", sink.unique_bugs());
    for v in sink.violations().iter().take(1) {
        println!("\n--- thread-safety violation (caught red-handed) ---");
        println!(
            "  {} at {}  [{}]",
            v.trapped.op_name, v.trapped.site, v.trapped.context
        );
        println!(
            "  {} at {}  [{}]",
            v.hitter.op_name, v.hitter.site, v.hitter.context
        );
    }
}
