//! Quickstart: detect the paper's Fig. 1 bug in one test run.
//!
//! One task calls `dict.add(key1, v)` while another calls
//! `dict.contains_key(&key2)`. Even though the keys differ, the dictionary's
//! thread-safety contract forbids a write concurrent with any other access —
//! the "different keys are safe" misconception behind many of the 1,134 bugs
//! the paper found.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tsvd::prelude::*;

fn main() {
    // A TSVD runtime with stack capture on, so the report shows both sides.
    let mut config = TsvdConfig::paper().scaled(0.05); // 5 ms delays.
    config.capture_stacks = true;
    let rt = Runtime::tsvd(config);
    let pool = Pool::with_runtime(2, rt.clone());

    let dict: Dictionary<u64, u64> = Dictionary::new(&rt);

    // The buggy test: a writer and a reader race on one dictionary.
    // TSVD observes the near miss, arms the pair, delays one side, and
    // catches the other side red-handed — all in this single run.
    for round in 0..50u64 {
        let d1 = dict.clone();
        let writer = pool.spawn(move || {
            d1.add(round, round * 10); // Thread 1: dict.Add(key1, value)
        });
        let d2 = dict.clone();
        let reader = pool.spawn(move || {
            d2.contains_key(&(round + 1_000)); // Thread 2: dict.ContainsKey(key2)
        });
        writer.wait();
        reader.wait();
        if rt.reports().unique_bugs() > 0 {
            break;
        }
    }

    let sink = rt.reports();
    println!("=== TSVD quickstart ===");
    println!("on_calls observed : {}", rt.stats().on_calls());
    println!("delays injected   : {}", rt.stats().delays_injected());
    println!("unique bugs       : {}", sink.unique_bugs());

    for v in sink.violations().iter().take(1) {
        println!("\n--- thread-safety violation (caught red-handed) ---");
        println!(
            "  {} at {}  [{}]",
            v.trapped.op_name, v.trapped.site, v.trapped.context
        );
        println!(
            "  {} at {}  [{}]",
            v.hitter.op_name, v.hitter.site, v.hitter.context
        );
        if let Some(stack) = &v.trapped.stack {
            let head: Vec<&str> = stack.lines().take(6).collect();
            println!("  trapped-side stack (head):\n    {}", head.join("\n    "));
        }
    }

    if sink.unique_bugs() == 0 {
        println!("\n(no collision this time — timing-dependent; rerun to catch it)");
    } else {
        println!("\nEvery report above is a true bug: both threads were inside");
        println!("conflicting methods of one object at the same instant.");
    }
}
