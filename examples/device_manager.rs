//! The device-manager bug of Fig. 10 (a).
//!
//! A listener thread creates one asynchronous task per client message; each
//! task updates `GlobalStatus[clientID] = s` on a plain dictionary. Two
//! near-simultaneous messages make two tasks write the dictionary
//! concurrently and silently corrupt it. TSVD catches the pair and the
//! corruption sentinel independently witnesses the torn state.
//!
//! ```text
//! cargo run --release --example device_manager
//! ```

use std::time::Duration;

use tsvd::prelude::*;

fn main() {
    let rt = Runtime::tsvd(TsvdConfig::paper().scaled(0.05));
    let pool = Pool::with_runtime(3, rt.clone());

    let global_status: Dictionary<u32, u64> = Dictionary::new(&rt);

    println!("=== device manager (Fig. 10a) ===");
    let mut handles = Vec::new();
    for msg in 0..60u32 {
        let status = global_status.clone();
        // The listener dispatches an async status update per message...
        handles.push(pool.spawn(move || {
            std::thread::sleep(Duration::from_micros(300)); // processing
            status.set(msg % 4, u64::from(msg)); // GlobalStatus[clientID] = s
        }));
        // ...and keeps listening.
        std::thread::sleep(Duration::from_micros(150));
    }
    for h in handles {
        h.wait();
    }

    let sink = rt.reports();
    println!("messages processed     : 60");
    println!("delays injected        : {}", rt.stats().delays_injected());
    println!("unique bugs            : {}", sink.unique_bugs());
    println!("total catches          : {}", sink.total_occurrences());
    println!("corruption witnessed   : {}", global_status.is_corrupted());
    for v in sink.violations().iter().take(1) {
        println!("\nexample report:");
        println!("  {} at {}", v.trapped.op_name, v.trapped.site);
        println!("  {} at {}", v.hitter.op_name, v.hitter.site);
        println!(
            "  same static location: {} (34% of the paper's bugs look like this)",
            v.is_same_location()
        );
    }

    // Coverage statistics (§5.2 "Actionable Reports"): which instrumented
    // call sites ever ran, and which ran in a concurrent phase.
    println!(
        "\ncoverage: {} sites hit, {} in a concurrent phase",
        rt.stats().sites_covered(),
        rt.stats().sites_covered_concurrently()
    );
}
