//! The §5.2 validation workflow: discover, then confirm by focused replay.
//!
//! The paper's product teams confirmed every reported bug as real. The
//! mechanical loop a developer runs on a TSVD report:
//!
//! 1. TSVD finds a violation during normal testing (near-miss → trap);
//! 2. the report names the two static locations;
//! 3. a *focused* run delays only at those two locations with lengthened
//!    delays, re-triggering the exact interleaving on demand.
//!
//! ```text
//! cargo run --release --example bug_validation
//! ```

use std::sync::Arc;
use std::time::Duration;

use tsvd::prelude::*;

/// The unit under test: a metrics registry with a same-key write-write TSV.
fn metrics_test(rt: &Arc<Runtime>) {
    let pool = Pool::with_runtime(2, rt.clone());
    let metrics: Dictionary<&'static str, u64> = Dictionary::new(rt);
    for round in 0..40u64 {
        let m1 = metrics.clone();
        let a = pool.spawn(move || m1.set("requests", round));
        let m2 = metrics.clone();
        let b = pool.spawn(move || m2.set("requests", round * 2));
        a.wait();
        b.wait();
        if rt.reports().unique_bugs() > 0 {
            break;
        }
    }
}

fn main() {
    let config = TsvdConfig::paper().scaled(0.05);

    println!("=== step 1: discovery run under TSVD ===");
    let discover = Runtime::tsvd(config.clone());
    metrics_test(&discover);
    let Some(pair) = discover.reports().bug_pairs().first().copied() else {
        println!("no bug caught this time (timing-dependent) — rerun");
        return;
    };
    println!(
        "found: {} / {}  ({} delays injected)",
        pair.first,
        pair.second,
        discover.stats().delays_injected()
    );

    println!("\n=== step 2: focused replay (4x delays, only this pair) ===");
    let mut confirmed = 0;
    for attempt in 1..=3 {
        let replay = Runtime::focused(config.clone(), pair, 4);
        metrics_test(&replay);
        let hit = replay.reports().bug_pairs().contains(&pair);
        println!(
            "replay {attempt}: reproduced={hit} (delays={}, total delay {:?})",
            replay.stats().delays_injected(),
            Duration::from_nanos(replay.stats().delay_total_ns()),
        );
        if hit {
            confirmed += 1;
        }
    }
    println!(
        "\nconfirmed {confirmed}/3 replays — the report is actionable: a developer\n\
         can watch the violation happen at will before writing the fix."
    );
}
