//! Instrumenting *your own* thread-unsafe type.
//!
//! The paper ships an *extensible* list of thread-unsafe APIs (§4): teams
//! add their own classes and get "pay-as-you-go" checking with no other
//! configuration. The Rust analog: wrap any storage in
//! [`Instrumented`](tsvd_collections::instrumented::Instrumented), mark the
//! wrapper methods `#[track_caller]`, and classify each as read or write.
//! Everything else — near-miss tracking, traps, reports — comes for free.
//!
//! ```text
//! cargo run --release --example custom_type
//! ```

use std::sync::Arc;
use std::time::Duration;

use tsvd::collections::instrumented::Instrumented;
use tsvd::prelude::*;

/// A domain type the standard collections don't cover: a bounded ring
/// buffer of samples with a running sum.
struct RingStorage {
    samples: Vec<f64>,
    head: usize,
    sum: f64,
}

/// The instrumented wrapper — this is all the "instrumenter" a user writes.
#[derive(Clone)]
struct SampleRing {
    inner: Arc<Instrumented<RingStorage>>,
}

impl SampleRing {
    fn new(rt: &Arc<Runtime>, capacity: usize) -> SampleRing {
        SampleRing {
            inner: Instrumented::new(
                RingStorage {
                    samples: vec![0.0; capacity.max(1)],
                    head: 0,
                    sum: 0.0,
                },
                rt.clone(),
            ),
        }
    }

    /// Records a sample (write API).
    #[track_caller]
    pub fn record(&self, value: f64) {
        let site = tsvd::core::site!();
        self.inner.write(site, "SampleRing.record", |s| {
            let slot = s.head % s.samples.len();
            s.sum += value - s.samples[slot];
            s.samples[slot] = value;
            s.head += 1;
        });
    }

    /// Reads the running mean (read API).
    #[track_caller]
    pub fn mean(&self) -> f64 {
        let site = tsvd::core::site!();
        self.inner
            .read(site, "SampleRing.mean", |s| s.sum / s.samples.len() as f64)
    }
}

fn main() {
    let rt = Runtime::tsvd(TsvdConfig::paper().scaled(0.05));
    let pool = Pool::with_runtime(2, rt.clone());

    println!("=== custom instrumented type: SampleRing ===");
    let ring = SampleRing::new(&rt, 32);

    // A telemetry writer races a dashboard reader — the same read-write
    // TSV shape as Fig. 1, on a type TSVD has never seen before.
    let r1 = ring.clone();
    let writer = pool.spawn(move || {
        for i in 0..60 {
            r1.record(f64::from(i));
            std::thread::sleep(Duration::from_micros(300));
        }
    });
    let r2 = ring.clone();
    let reader = pool.spawn(move || {
        for _ in 0..60 {
            let _ = r2.mean();
            std::thread::sleep(Duration::from_micros(300));
        }
    });
    writer.wait();
    reader.wait();

    println!("unique bugs : {}", rt.reports().unique_bugs());
    for b in rt.reports().export().bugs {
        println!(
            "  {} / {}  at {} / {}  (caught {}x{})",
            b.op_a,
            b.op_b,
            b.location_a,
            b.location_b,
            b.occurrences,
            if b.read_write { ", read-write" } else { "" },
        );
    }
    println!(
        "\nNo detector changes were needed: the wrapper's read/write\n\
         classification is the entire integration surface."
    );
}
