//! The network-validation bug of Fig. 10 (b), plus trap-file carry-over.
//!
//! Startup validates every host's configuration with `Parallel.ForEach`;
//! each iteration writes `configureCache[host] = cl` on a thread-unsafe
//! dictionary. This example also demonstrates §3.4.6: the trap set learned
//! in run 1 is exported to a trap file and imported by run 2, which can
//! then trap dangerous pairs on their *first* occurrence.
//!
//! ```text
//! cargo run --release --example network_validation
//! ```

use std::time::Duration;

use tsvd::prelude::*;

fn validate_hosts(rt: &std::sync::Arc<Runtime>, hosts: u32) {
    let pool = Pool::with_runtime(3, rt.clone());
    let configure_cache: Dictionary<u32, u64> = Dictionary::new(rt);
    let cache = configure_cache.clone();
    parallel_for_each(&pool, 0..hosts, move |host| {
        std::thread::sleep(Duration::from_micros(400)); // GetConfigLevel(host)
        cache.set(host, u64::from(host) * 7); // configureCache[host] = cl
    });
}

fn main() {
    println!("=== network validation (Fig. 10b) with trap-file carry-over ===");
    let config = TsvdConfig::paper().scaled(0.05);

    // Run 1: near misses are discovered and the trap set fills up.
    let rt1 = Runtime::tsvd(config.clone());
    validate_hosts(&rt1, 48);
    println!(
        "run 1: bugs={} delays={} trap-file pairs={}",
        rt1.reports().unique_bugs(),
        rt1.stats().delays_injected(),
        rt1.export_trap_file().map_or(0, |tf| tf.pairs.len()),
    );

    // Persist the trap file exactly as the deployed tool does.
    let trap_path = std::env::temp_dir().join("tsvd_example_traps.json");
    let trap_file = rt1.export_trap_file().expect("tsvd persists its trap set");
    trap_file.save(&trap_path).expect("write trap file");

    // Run 2: the imported trap set arms the dangerous pairs immediately, so
    // even first occurrences can be trapped.
    let loaded = tsvd::core::TrapFileData::load(&trap_path).expect("read trap file");
    let rt2 = Runtime::tsvd(config);
    rt2.import_trap_file(&loaded);
    validate_hosts(&rt2, 48);
    println!(
        "run 2: bugs={} delays={} (pre-armed from {})",
        rt2.reports().unique_bugs(),
        rt2.stats().delays_injected(),
        trap_path.display(),
    );

    let total = rt1.reports().unique_bugs() + rt2.reports().unique_bugs();
    if total == 0 {
        println!("(no collision in either run — timing-dependent; rerun)");
    } else {
        println!("caught the Parallel.ForEach write-write TSV within 2 runs");
    }
    std::fs::remove_file(&trap_path).ok();
}
