//! The §5.6 production incident: two threads sorting one list.
//!
//! "The sorting result of an unprotected list is undetermined when two
//! threads are doing that concurrently. This undetermined behavior
//! propagated and finally caused the service to go down for several hours.
//! TSVD can reproduce this bug without any prior knowledge."
//!
//! This example also compares detectors on the same incident: TSVD, the
//! DataCollider emulation, and DynamicRandom each get one run.
//!
//! ```text
//! cargo run --release --example production_incident
//! ```

use std::sync::Arc;
use std::time::Duration;

use tsvd::prelude::*;

fn incident(rt: &Arc<Runtime>) -> (usize, u64) {
    let pool = Pool::with_runtime(2, rt.clone());
    let list: List<u64> = List::new(rt);
    for i in 0..24u64 {
        list.add((i * 37) % 17);
    }
    let l1 = list.clone();
    let sorter_a = pool.spawn(move || {
        for _ in 0..30 {
            l1.sort();
            std::thread::sleep(Duration::from_micros(300));
        }
    });
    let l2 = list.clone();
    let sorter_b = pool.spawn(move || {
        for _ in 0..30 {
            l2.sort();
            std::thread::sleep(Duration::from_micros(300));
        }
    });
    sorter_a.wait();
    sorter_b.wait();
    (rt.reports().unique_bugs(), rt.stats().delays_injected())
}

fn main() {
    println!("=== production incident: concurrent List.sort (§5.6) ===\n");
    let config = TsvdConfig::paper().scaled(0.05);

    let tsvd = Runtime::tsvd(config.clone());
    let (bugs, delays) = incident(&tsvd);
    println!("TSVD          : bugs={bugs} delays={delays}");

    let dc = Runtime::static_random(config.clone());
    let (bugs, delays) = incident(&dc);
    println!("DataCollider  : bugs={bugs} delays={delays}");

    let dr = Runtime::dynamic_random(config);
    let (bugs, delays) = incident(&dr);
    println!("DynamicRandom : bugs={bugs} delays={delays}");

    println!(
        "\nTSVD reproduces the incident from the unit test alone — no\n\
         production traces, no prior knowledge of the racing pair."
    );
    for v in tsvd.reports().violations().iter().take(1) {
        println!(
            "\ncaught: {} at {}\n    vs  {} at {}",
            v.trapped.op_name, v.trapped.site, v.hitter.op_name, v.hitter.site
        );
    }
}
