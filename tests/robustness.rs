//! Robustness: the no-false-positive guarantee holds across arbitrary
//! seeds and scales, and detection results stay sane under repetition.

use tsvd::harness::runner::{check_no_false_positives, run_suite, DetectorKind, RunOptions};
use tsvd::prelude::*;
use tsvd::workloads::suite::{build_suite, SuiteConfig};

fn options(seed_shift: u64) -> RunOptions {
    let mut config = TsvdConfig::paper().scaled(0.02);
    config.seed = config.seed.wrapping_add(seed_shift);
    RunOptions {
        config,
        threads: 2,
        runs: 1,
        shared_trap_file: false,
        module_deadline: Some(std::time::Duration::from_secs(30)),
        static_priors: None,
    }
}

#[test]
fn no_false_positives_across_seeds() {
    // Every seed produces different delay placements; none may ever yield
    // a report in a clean module.
    for seed in 0..6u64 {
        let suite = build_suite(SuiteConfig {
            modules: 25,
            seed: 0xF00D ^ (seed * 7919),
        });
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &options(seed * 31));
        check_no_false_positives(&suite, &outcome).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn shared_trap_file_never_creates_false_positives() {
    // Pre-arming every module with everyone's pairs injects delays in
    // clean modules too; the trap mechanism must still never report there.
    let suite = build_suite(SuiteConfig {
        modules: 50,
        seed: 0x5EED,
    });
    let mut o = options(0);
    o.shared_trap_file = true;
    o.runs = 2;
    let outcome = run_suite(&suite, DetectorKind::Tsvd, &o);
    check_no_false_positives(&suite, &outcome).expect("shared trap file stays sound");
}

#[test]
fn repeated_single_module_runs_are_stable() {
    // The same buggy module under the same options: unique bugs per run
    // never exceed the planted count, reports never contradict ground
    // truth, and the runtime never leaks traps between runs.
    let m = tsvd::workloads::scenarios::paper_examples::dict_racy(8);
    let o = options(0);
    for _ in 0..6 {
        let rt = tsvd::harness::runner::run_module_once(&m, DetectorKind::Tsvd, &o, None).runtime;
        assert!(rt.reports().unique_bugs() <= 2);
        for v in rt.reports().violations() {
            assert!(v.trapped.op_name.starts_with("Dictionary."));
        }
    }
}

/// A strategy that always delays and always panics in `on_delay_complete`
/// — the hostile-callback case the runtime's RAII guards must absorb.
struct PanickingStrategy;

impl tsvd::core::Strategy for PanickingStrategy {
    fn name(&self) -> &'static str {
        "panicking"
    }

    fn on_access(&self, _access: &tsvd::core::Access) -> Option<u64> {
        Some(100_000) // 0.1 ms: enough to arm a real trap.
    }

    fn on_delay_complete(
        &self,
        _access: &tsvd::core::Access,
        _start_ns: u64,
        _end_ns: u64,
        _caught: bool,
    ) {
        panic!("strategy callback explodes");
    }
}

#[test]
fn panicking_strategy_callback_leaves_no_live_traps() {
    let rt = tsvd::core::Runtime::new(TsvdConfig::for_testing(), Box::new(PanickingStrategy));
    for i in 0..5u64 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.on_call(
                tsvd::core::ObjId(i),
                tsvd::core::site!(),
                "t.op",
                tsvd::core::OpKind::Write,
            );
        }));
        assert!(result.is_err(), "the callback's panic must propagate");
        assert_eq!(
            rt.live_traps(),
            0,
            "a panic unwinding through on_call must still clear the trap"
        );
    }
}

#[test]
fn panicking_instrumented_task_leaves_no_live_traps() {
    // Unwind through the trapped wrapper call itself: a task panics right
    // after instrumented accesses that may be sleeping in a delay.
    let mut config = TsvdConfig::for_testing();
    config.dynamic_random_p = 1.0; // Delay at every access.
    for _ in 0..10 {
        let rt = tsvd::core::Runtime::dynamic_random(config.clone());
        let pool = Pool::with_runtime(2, rt.clone());
        let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let d = dict.clone();
                pool.spawn(move || {
                    d.set(i % 2, i);
                    panic!("task dies mid-burst");
                })
            })
            .collect();
        for h in handles {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
        }
        assert_eq!(rt.live_traps(), 0, "panicked tasks must not leak traps");
    }
}

#[test]
fn chaos_loop_over_buggy_and_clean_suite() {
    // 100 hostile iterations over a mixed suite: panicking tasks, dropped
    // handles, stalls. The suite must always terminate, never leak traps,
    // and never report a bug in a clean module.
    let mut chaos_options = tsvd::harness::ChaosOptions::standard();
    chaos_options.iterations = 100;
    chaos_options.tasks = 8;
    let report = tsvd::harness::run_chaos(&chaos_options).expect("chaos invariants hold");
    assert_eq!(report.tasks_spawned, 800);
    assert!(report.tasks_panicked > 0);
    assert!(report.handles_dropped > 0);

    // The ordinary suite still behaves right after the storm (clean modules
    // stay clean even with panic-adjacent machinery warmed up).
    let suite = build_suite(SuiteConfig {
        modules: 10,
        seed: 0xC4A05,
    });
    let outcome = run_suite(&suite, DetectorKind::Tsvd, &options(0));
    check_no_false_positives(&suite, &outcome).expect("clean modules stay clean");
}

#[test]
fn starved_pool_terminates_degrades_and_keeps_the_violation_on_disk() {
    // The acceptance scenario: every pool thread ends up blocked-or-delayed
    // behind injected delays; the watchdog must break the starvation, the
    // module must terminate, and a violation caught before a simulated
    // abort must be recoverable from the JSONL sink afterwards.
    let dir = std::env::temp_dir().join(format!("tsvd_robust_sink_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let sink_path = dir.join("violations.jsonl");

    let mut config = TsvdConfig::for_testing();
    config.dynamic_random_p = 1.0; // Delay at every access.
    config.delay_ns = 200_000_000; // 200 ms delays...
    config.max_delay_per_run_ns = u64::MAX;
    config.max_delay_per_context_ns = u64::MAX;
    config.watchdog_poll_ns = 2_000_000; // ...polled every 2 ms,
    config.watchdog_grace_polls = 2;
    config.watchdog_max_cancellations = 4; // ...degrading quickly.
    config.durable_sink = Some(sink_path.clone());

    let rt = tsvd::core::Runtime::dynamic_random(config);
    let start = std::time::Instant::now();
    {
        let pool = Pool::with_runtime(2, rt.clone());
        let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
        // Many contending tasks on a 2-worker pool: both workers sit in
        // 200 ms delays back to back — delay-induced starvation.
        let handles: Vec<_> = (0..16u64)
            .map(|i| {
                let d = dict.clone();
                pool.spawn(move || {
                    d.set(i % 2, i);
                    let _ = d.get(&(i % 2));
                })
            })
            .collect();
        for h in handles {
            h.wait();
        }
    }
    // Without the watchdog this workload needs 32+ sequential 200 ms
    // delays (≥6.4 s); cancellations + degradation must finish it fast.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(6),
        "watchdog did not break the starvation (took {:?})",
        start.elapsed()
    );
    assert!(
        rt.is_passive(),
        "repeated starvation must degrade the runtime to passive monitoring"
    );
    assert_eq!(rt.live_traps(), 0);

    let caught = rt.reports().total_occurrences();
    // Simulated abort: drop the runtime without any orderly export. The
    // write-ahead sink must already hold everything that was reported.
    drop(rt);
    if caught > 0 {
        let records = tsvd::core::DurableSink::load(&sink_path).expect("sink readable after abort");
        assert!(
            records.len() >= caught,
            "sink has {} records, {} violations were caught",
            records.len(),
            caught
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn extreme_configs_stay_sound() {
    // Degenerate-but-valid configurations must not break the guarantee.
    let suite = build_suite(SuiteConfig {
        modules: 25,
        seed: 0xE,
    });
    for tweak in [
        |c: &mut TsvdConfig| c.near_miss_history = 1,
        |c: &mut TsvdConfig| c.phase_buffer = 2,
        |c: &mut TsvdConfig| c.decay_factor = 0.99,
        |c: &mut TsvdConfig| c.hb_inference_window = 100,
        |c: &mut TsvdConfig| c.delay_ns = 1,
    ] {
        let mut o = options(0);
        tweak(&mut o.config);
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &o);
        check_no_false_positives(&suite, &outcome).expect("extreme config stays sound");
    }
}
