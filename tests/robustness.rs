//! Robustness: the no-false-positive guarantee holds across arbitrary
//! seeds and scales, and detection results stay sane under repetition.

use tsvd::harness::runner::{check_no_false_positives, run_suite, DetectorKind, RunOptions};
use tsvd::prelude::*;
use tsvd::workloads::suite::{build_suite, SuiteConfig};

fn options(seed_shift: u64) -> RunOptions {
    let mut config = TsvdConfig::paper().scaled(0.02);
    config.seed = config.seed.wrapping_add(seed_shift);
    RunOptions {
        config,
        threads: 2,
        runs: 1,
        shared_trap_file: false,
    }
}

#[test]
fn no_false_positives_across_seeds() {
    // Every seed produces different delay placements; none may ever yield
    // a report in a clean module.
    for seed in 0..6u64 {
        let suite = build_suite(SuiteConfig {
            modules: 25,
            seed: 0xF00D ^ (seed * 7919),
        });
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &options(seed * 31));
        check_no_false_positives(&suite, &outcome).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn shared_trap_file_never_creates_false_positives() {
    // Pre-arming every module with everyone's pairs injects delays in
    // clean modules too; the trap mechanism must still never report there.
    let suite = build_suite(SuiteConfig {
        modules: 50,
        seed: 0x5EED,
    });
    let mut o = options(0);
    o.shared_trap_file = true;
    o.runs = 2;
    let outcome = run_suite(&suite, DetectorKind::Tsvd, &o);
    check_no_false_positives(&suite, &outcome).expect("shared trap file stays sound");
}

#[test]
fn repeated_single_module_runs_are_stable() {
    // The same buggy module under the same options: unique bugs per run
    // never exceed the planted count, reports never contradict ground
    // truth, and the runtime never leaks traps between runs.
    let m = tsvd::workloads::scenarios::paper_examples::dict_racy(8);
    let o = options(0);
    for _ in 0..6 {
        let (rt, _) = tsvd::harness::runner::run_module_once(&m, DetectorKind::Tsvd, &o, None);
        assert!(rt.reports().unique_bugs() <= 2);
        for v in rt.reports().violations() {
            assert!(v.trapped.op_name.starts_with("Dictionary."));
        }
    }
}

#[test]
fn extreme_configs_stay_sound() {
    // Degenerate-but-valid configurations must not break the guarantee.
    let suite = build_suite(SuiteConfig {
        modules: 25,
        seed: 0xE,
    });
    for tweak in [
        |c: &mut TsvdConfig| c.near_miss_history = 1,
        |c: &mut TsvdConfig| c.phase_buffer = 2,
        |c: &mut TsvdConfig| c.decay_factor = 0.99,
        |c: &mut TsvdConfig| c.hb_inference_window = 100,
        |c: &mut TsvdConfig| c.delay_ns = 1,
    ] {
        let mut o = options(0);
        tweak(&mut o.config);
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &o);
        check_no_false_positives(&suite, &outcome).expect("extreme config stays sound");
    }
}
