//! End-to-end detection tests: the full pipeline from instrumented
//! collection through task substrate to violation report.
//!
//! Timing-dependent positives use bounded retry loops (a fresh runtime per
//! attempt); the no-false-positive properties are asserted unconditionally
//! — they must hold on every run, every time.

use std::sync::Arc;
use std::time::Duration;

use tsvd::prelude::*;

fn test_config() -> TsvdConfig {
    TsvdConfig::paper().scaled(0.02)
}

/// Retries a timing-dependent detection up to `attempts` times.
fn eventually(attempts: usize, mut body: impl FnMut() -> bool) {
    for _ in 0..attempts {
        if body() {
            return;
        }
    }
    panic!("detection did not succeed in {attempts} attempts");
}

#[test]
fn fig1_dict_racy_is_caught_in_one_run() {
    eventually(3, || {
        let rt = Runtime::tsvd(test_config());
        let pool = Pool::with_runtime(2, rt.clone());
        let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
        for round in 0..40u64 {
            let d1 = dict.clone();
            let w = pool.spawn(move || d1.add(round, round));
            let d2 = dict.clone();
            let r = pool.spawn(move || d2.contains_key(&(round + 500)));
            w.wait();
            r.wait();
            if rt.reports().unique_bugs() > 0 {
                break;
            }
        }
        rt.reports().unique_bugs() > 0
    });
}

#[test]
fn caught_violation_report_is_well_formed() {
    eventually(3, || {
        let mut cfg = test_config();
        cfg.capture_stacks = true;
        let rt = Runtime::tsvd(cfg);
        let pool = Pool::with_runtime(2, rt.clone());
        let list: List<u64> = List::new(&rt);
        for i in 0..40u64 {
            let l1 = list.clone();
            let a = pool.spawn(move || l1.add(i));
            let l2 = list.clone();
            let b = pool.spawn(move || l2.add(i + 100));
            a.wait();
            b.wait();
            if rt.reports().unique_bugs() > 0 {
                break;
            }
        }
        let violations = rt.reports().violations();
        if violations.is_empty() {
            return false;
        }
        let v = &violations[0];
        assert_ne!(v.trapped.context, v.hitter.context);
        assert!(v.trapped.kind.conflicts_with(v.hitter.kind));
        assert!(v.trapped.op_name.starts_with("List."));
        assert!(v.hitter.op_name.starts_with("List."));
        assert!(v.trapped.stack.is_some(), "stack capture was enabled");
        assert!(v.hitter.stack.is_some());
        assert!(v.trapped.site.to_string().contains("detection_e2e.rs"));
        true
    });
}

#[test]
fn lock_protected_code_is_never_reported() {
    // Unconditional: the lock makes a violation impossible, so any report
    // would be a false positive — which TSVD guarantees not to produce.
    let rt = Runtime::tsvd(test_config());
    let pool = Pool::with_runtime(2, rt.clone());
    let lock = Arc::new(TsvdMutex::with_runtime((), rt.clone()));
    let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
    let handles: Vec<_> = (0..2u64)
        .map(|w| {
            let lock = lock.clone();
            let d = dict.clone();
            pool.spawn(move || {
                for i in 0..30 {
                    let _g = lock.lock();
                    d.set(w, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.wait();
    }
    assert_eq!(rt.reports().unique_bugs(), 0, "no false positives, ever");
}

#[test]
fn read_only_concurrency_is_never_reported() {
    let rt = Runtime::tsvd(test_config());
    let pool = Pool::with_runtime(3, rt.clone());
    let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
    for i in 0..16 {
        dict.set(i, i);
    }
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let d = dict.clone();
            pool.spawn(move || {
                for i in 0..50u64 {
                    let _ = d.get(&(i % 16));
                    let _ = d.contains_key(&(i % 7));
                }
            })
        })
        .collect();
    for h in handles {
        h.wait();
    }
    assert_eq!(rt.reports().unique_bugs(), 0, "reads never conflict");
}

#[test]
fn every_detector_holds_the_no_false_positive_guarantee() {
    // All variants share the trap framework, so the guarantee is
    // variant-independent: run correctly synchronized code under each.
    for rt in [
        Runtime::tsvd(test_config()),
        Runtime::tsvd_hb(test_config()),
        Runtime::dynamic_random(test_config()),
        Runtime::static_random(test_config()),
    ] {
        let pool = Pool::with_runtime(2, rt.clone());
        let lock = Arc::new(TsvdMutex::with_runtime((), rt.clone()));
        let queue: Queue<u64> = Queue::new(&rt);
        let handles: Vec<_> = (0..2u64)
            .map(|w| {
                let lock = lock.clone();
                let q = queue.clone();
                pool.spawn(move || {
                    for i in 0..20 {
                        let _g = lock.lock();
                        q.enqueue(w * 100 + i);
                        let _ = q.dequeue();
                    }
                })
            })
            .collect();
        for h in handles {
            h.wait();
        }
        assert_eq!(
            rt.reports().unique_bugs(),
            0,
            "{} reported a false positive",
            rt.strategy_name()
        );
    }
}

#[test]
fn trap_file_enables_second_run_detection_of_single_shot_bug() {
    // The racy operations execute exactly once per run, so run 1 can only
    // observe the near miss; run 2, pre-armed from the trap file, delays
    // the first occurrence and catches it (§3.4.6).
    let single_shot = |rt: &Arc<Runtime>| {
        let pool = Pool::with_runtime(2, rt.clone());
        let dict: Dictionary<u64, u64> = Dictionary::new(rt);
        let d1 = dict.clone();
        let a = pool.spawn(move || d1.set(1, 42));
        let d2 = dict.clone();
        let b = pool.spawn(move || {
            std::thread::sleep(Duration::from_micros(400));
            let _ = d2.contains_key(&1);
        });
        a.wait();
        b.wait();
    };

    eventually(5, || {
        let rt1 = Runtime::tsvd(test_config());
        single_shot(&rt1);
        let Some(tf) = rt1.export_trap_file() else {
            return false;
        };
        if tf.pairs.is_empty() {
            return false; // Near miss not observed this time; retry.
        }
        let rt2 = Runtime::tsvd(test_config());
        rt2.import_trap_file(&tf);
        single_shot(&rt2);
        rt2.reports().unique_bugs() > 0
    });
}

#[test]
fn corruption_sentinel_confirms_triggered_violations() {
    // When TSVD forces the collision, the collection's physical sentinel
    // witnesses the same violation: detection and corruption co-occur.
    eventually(5, || {
        let rt = Runtime::tsvd(test_config());
        let pool = Pool::with_runtime(2, rt.clone());
        let list: List<u64> = List::new(&rt);
        for i in 0..60u64 {
            let l1 = list.clone();
            let a = pool.spawn(move || l1.add(i));
            let l2 = list.clone();
            let b = pool.spawn(move || l2.add(i + 1_000));
            a.wait();
            b.wait();
        }
        rt.reports().unique_bugs() > 0 && list.is_corrupted()
    });
}

#[test]
fn tsvd_hb_sees_lock_ordering_and_skips_protected_pairs() {
    // TSVD-HB consumes the lock events: consistently protected accesses
    // are ordered and must not even be armed (zero delays expected).
    let rt = Runtime::tsvd_hb(test_config());
    let pool = Pool::with_runtime(2, rt.clone());
    let lock = Arc::new(TsvdMutex::with_runtime((), rt.clone()));
    let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
    let handles: Vec<_> = (0..2u64)
        .map(|w| {
            let lock = lock.clone();
            let d = dict.clone();
            pool.spawn(move || {
                for i in 0..20 {
                    let _g = lock.lock();
                    d.set(w, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.wait();
    }
    assert_eq!(rt.reports().unique_bugs(), 0);
    assert_eq!(
        rt.stats().delays_injected(),
        0,
        "vector clocks order the critical sections; nothing should arm"
    );
}

#[test]
fn report_json_export_round_trips() {
    eventually(3, || {
        let rt = Runtime::tsvd(test_config());
        let pool = Pool::with_runtime(2, rt.clone());
        let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
        for i in 0..40u64 {
            let d1 = dict.clone();
            let a = pool.spawn(move || d1.set(1, i));
            let d2 = dict.clone();
            let b = pool.spawn(move || d2.set(2, i));
            a.wait();
            b.wait();
            if rt.reports().unique_bugs() > 0 {
                break;
            }
        }
        if rt.reports().unique_bugs() == 0 {
            return false;
        }
        let dir = std::env::temp_dir().join(format!("tsvd_e2e_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bugs.json");
        rt.write_report(&path).expect("write report");
        let back = tsvd::core::report::ReportExport::load(&path).expect("load");
        assert_eq!(back.unique_bugs, rt.reports().unique_bugs());
        assert!(back
            .bugs
            .iter()
            .all(|b| b.location_a.contains("detection_e2e.rs")));
        std::fs::remove_dir_all(&dir).ok();
        true
    });
}

#[test]
fn delay_budget_prevents_test_timeouts() {
    let mut cfg = test_config();
    cfg.max_delay_per_run_ns = cfg.delay_ns * 3;
    let rt = Runtime::tsvd(cfg);
    let pool = Pool::with_runtime(2, rt.clone());
    let dict: Dictionary<u64, u64> = Dictionary::new(&rt);
    for i in 0..100u64 {
        let d1 = dict.clone();
        let a = pool.spawn(move || d1.set(1, i));
        let d2 = dict.clone();
        let b = pool.spawn(move || d2.set(2, i));
        a.wait();
        b.wait();
    }
    assert!(
        rt.stats().delay_total_ns() <= rt.config().max_delay_per_run_ns * 2,
        "total injected delay must respect the per-run budget (±1 delay)"
    );
}
