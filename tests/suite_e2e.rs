//! Suite-level integration: detectors against the generated corpus and the
//! Table 4 open-source analogs.

use tsvd::harness::runner::{
    check_no_false_positives, run_module_once, run_suite, DetectorKind, RunOptions,
};
use tsvd::prelude::*;
use tsvd::workloads::opensource::projects;
use tsvd::workloads::suite::{build_suite, SuiteConfig};

fn options(runs: usize) -> RunOptions {
    RunOptions {
        config: TsvdConfig::paper().scaled(0.02),
        threads: 2,
        runs,
        shared_trap_file: false,
        module_deadline: Some(std::time::Duration::from_secs(30)),
        static_priors: None,
    }
}

#[test]
fn no_detector_reports_false_positives_on_the_suite() {
    let suite = build_suite(SuiteConfig::tiny());
    for kind in DetectorKind::TABLE2 {
        let outcome = run_suite(&suite, kind, &options(1));
        check_no_false_positives(&suite, &outcome)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
    }
}

#[test]
fn tsvd_finds_bugs_on_the_tiny_suite() {
    let suite = build_suite(SuiteConfig::tiny());
    let outcome = run_suite(&suite, DetectorKind::Tsvd, &options(2));
    assert!(
        outcome.total_bugs() >= 2,
        "tiny suite plants 8+ catchable bugs; found {}",
        outcome.total_bugs()
    );
}

#[test]
fn trap_files_carry_over_between_suite_runs() {
    let suite = build_suite(SuiteConfig::tiny());
    let outcome = run_suite(&suite, DetectorKind::Tsvd, &options(3));
    // The single-shot module can only ever be caught from run 2 onward.
    let single_shot_found_late = outcome
        .bugs
        .iter()
        .filter(|((module, _), _)| module.contains("single-shot"))
        .all(|(_, &run)| run >= 2);
    assert!(
        single_shot_found_late,
        "single-shot bugs need the trap file"
    );
}

#[test]
fn open_source_projects_are_caught_within_three_runs() {
    // Paper: all Table 4 TSVs trigger within 2 runs. Allow one extra run
    // of slack for scheduler noise on small machines, and require the
    // clear majority of projects to be caught.
    let opts = options(1);
    let mut caught = 0;
    let mut total = 0;
    for project in projects() {
        total += 1;
        let mut trap_file = None;
        for _run in 0..3 {
            let rt = run_module_once(
                &project.module,
                DetectorKind::Tsvd,
                &opts,
                trap_file.as_ref(),
            )
            .runtime;
            trap_file = rt.export_trap_file();
            if rt.reports().unique_bugs() > 0 {
                caught += 1;
                break;
            }
        }
    }
    assert!(
        caught >= total - 2,
        "only {caught}/{total} open-source analogs caught in 3 runs"
    );
}

#[test]
fn new_collection_scenarios_are_caught_within_three_runs() {
    use tsvd::workloads::scenarios::buggy;
    let opts = options(1);
    let scenarios = [
        buggy::set_membership(10),
        buggy::deque_workers(10),
        buggy::bitmap_flags(10),
        buggy::sorted_index(10),
        buggy::stack_undo(10),
    ];
    let mut caught = 0;
    for m in &scenarios {
        let mut trap_file = None;
        for _run in 0..3 {
            let rt = run_module_once(m, DetectorKind::Tsvd, &opts, trap_file.as_ref()).runtime;
            trap_file = rt.export_trap_file();
            if rt.reports().unique_bugs() > 0 {
                caught += 1;
                break;
            }
        }
    }
    assert!(
        caught >= scenarios.len() - 1,
        "only {caught}/{} new scenarios caught",
        scenarios.len()
    );
}

#[test]
fn suite_outcome_bookkeeping_is_consistent() {
    let suite = build_suite(SuiteConfig::tiny());
    let outcome = run_suite(&suite, DetectorKind::Tsvd, &options(2));
    let per_run_total: usize = outcome.runs.iter().map(|r| r.new_bugs.len()).sum();
    assert_eq!(per_run_total, outcome.total_bugs());
    for (bug, run) in &outcome.bugs {
        assert!(*run >= 1 && *run <= 2);
        assert!(outcome.occurrences[bug] >= 1);
    }
}
