//! End-to-end focused reproduction (§5.2 validation workflow): discover a
//! bug with TSVD, then confirm it with a single-pair focused replay.

use std::sync::Arc;

use tsvd::prelude::*;

fn buggy_module(rt: &Arc<Runtime>) {
    let pool = Pool::with_runtime(2, rt.clone());
    let dict: Dictionary<u64, u64> = Dictionary::new(rt);
    for round in 0..40u64 {
        let d1 = dict.clone();
        let a = pool.spawn(move || d1.set(1, round));
        let d2 = dict.clone();
        let b = pool.spawn(move || d2.set(2, round));
        a.wait();
        b.wait();
        if rt.reports().unique_bugs() > 0 {
            break;
        }
    }
}

#[test]
fn discovered_bug_reproduces_under_focused_replay() {
    let config = TsvdConfig::paper().scaled(0.02);
    for _attempt in 0..3 {
        // Discovery.
        let discover = Runtime::tsvd(config.clone());
        buggy_module(&discover);
        let Some(pair) = discover.reports().bug_pairs().first().copied() else {
            continue;
        };
        // Focused replay: longer delays, only this pair.
        let replay = Runtime::focused(config.clone(), pair, 4);
        buggy_module(&replay);
        let reproduced = replay.reports().bug_pairs().contains(&pair);
        assert!(reproduced, "focused replay must re-trigger the bug");
        // And the replay stayed focused: every delay hit the target pair.
        for v in replay.reports().violations() {
            assert!(pair.contains(v.trapped.site) || pair.contains(v.hitter.site));
        }
        return;
    }
    panic!("discovery failed in 3 attempts");
}

#[test]
fn focused_runtime_ignores_unrelated_code() {
    // A pair from an unrelated file: the focused runtime must never delay
    // in this module (site never matches) and so reports nothing.
    let pair = tsvd::core::near_miss::SitePair::new(
        SiteId::parse("other/file.rs:1:1").expect("well-formed"),
        SiteId::parse("other/file.rs:2:1").expect("well-formed"),
    );
    let rt = Runtime::focused(TsvdConfig::paper().scaled(0.02), pair, 2);
    buggy_module(&rt);
    assert_eq!(rt.stats().delays_injected(), 0);
    assert_eq!(rt.reports().unique_bugs(), 0);
}
