//! End-to-end: static priors from `tsvd-analyze` remove the warm-up run.
//!
//! The workload below touches a shared dictionary exactly once per task
//! per run. For the dynamic detector that is the worst case (§3.4.6): the
//! near miss that would arm the dangerous pair happens at the *last*
//! access of the run, so run 1 can never trap and a second, trap-file
//! seeded run is required. The static analyzer predicts the same pair
//! from this file's source before any run, and importing it as a prior
//! lets TSVD catch the violation in run 1.
//!
//! The test analyzes *its own source*, which doubles as a proof that the
//! analyzer's `file:line:column` output matches what `#[track_caller]`
//! records at run time — the pairs only pre-arm if the site ids agree.

use std::sync::Arc;

use tsvd::prelude::*;
use tsvd_core::{PairOrigin, TrapFileData};

/// This file's path exactly as `Location::caller()` reports it (cargo
/// compiles from the workspace root).
const SELF_PATH: &str = "tests/analyze_static_seed.rs";

fn config(seed_shift: u64) -> TsvdConfig {
    let mut config = TsvdConfig::paper().scaled(0.05);
    config.seed = config.seed.wrapping_add(seed_shift);
    config
}

/// One test run: two tasks, one conflicting `Dictionary.set` each.
fn run_workload_once(rt: &Arc<Runtime>) {
    let pool = Pool::with_runtime(2, rt.clone());
    let d: Dictionary<u64, u64> = Dictionary::new(rt);
    let d1 = d.clone();
    let d2 = d.clone();
    let a = pool.spawn(move || d1.set(1, 1));
    let b = pool.spawn(move || d2.set(2, 2));
    a.wait();
    b.wait();
}

/// Statically analyzes this very file and returns its predicted pairs as
/// a trap file.
fn static_priors() -> TrapFileData {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report =
        tsvd::analyze::analyze_paths(root, &[SELF_PATH.to_string()]).expect("analyze own source");
    assert!(
        report.pairs.iter().any(|p| {
            p.first_op == "Dictionary.set"
                && p.second_op == "Dictionary.set"
                && p.reason == "cross-task"
        }),
        "the analyzer must predict the workload's write-write pair, got {:?}",
        report.pairs
    );
    let priors = report.to_trap_file();
    assert_eq!(
        priors.count_origin(PairOrigin::Static),
        priors.pairs.len(),
        "every predicted pair must be tagged static"
    );
    priors
}

#[test]
fn unseeded_first_run_cannot_catch_a_once_per_run_pair() {
    for attempt in 0..10 {
        let rt = Runtime::tsvd(config(attempt));
        run_workload_once(&rt);
        assert_eq!(
            rt.reports().unique_bugs(),
            0,
            "each site runs once: arming happens at the run's last access, \
             so an unseeded first run must never trap"
        );
    }
}

#[test]
fn statically_seeded_first_run_catches_it() {
    let priors = static_priors();
    let mut first_catch = None;
    for attempt in 0..10 {
        // Every attempt is a *first* run: fresh runtime, static priors
        // only, no dynamically carried trap file.
        let rt = Runtime::tsvd(config(attempt));
        rt.import_trap_file(&priors);
        run_workload_once(&rt);
        if rt.reports().unique_bugs() > 0 {
            let violations = rt.reports().violations();
            let trapped = violations[0].trapped.site.to_string();
            assert!(
                priors
                    .pairs
                    .iter()
                    .any(|(a, b)| *a == trapped || *b == trapped),
                "the trapped site {trapped} must be one the analyzer predicted \
                 (column convention mismatch otherwise): {:?}",
                priors.pairs
            );
            assert!(trapped.starts_with(SELF_PATH));
            first_catch = Some(attempt + 1);
            break;
        }
    }
    assert!(
        first_catch.is_some(),
        "statically seeded TSVD must catch the pair in a first run"
    );
}

#[test]
fn statically_seeded_mean_runs_to_first_violation_stays_at_one() {
    let priors = static_priors();
    const SEEDS: u64 = 100;
    let mut total_runs = 0u32;
    for seed in 0..SEEDS {
        let mut carried = priors.clone();
        let mut runs = 0u32;
        loop {
            runs += 1;
            // Larger time constants than the probe tests above: at tiny
            // scales the trap delay occasionally expires before the second
            // task arrives, which would measure flakiness, not seeding.
            let mut cfg = TsvdConfig::paper().scaled(0.2);
            cfg.seed = cfg.seed.wrapping_add(1_000 + seed * 17 + u64::from(runs));
            let rt = Runtime::tsvd(cfg);
            rt.import_trap_file(&carried);
            run_workload_once(&rt);
            if rt.reports().unique_bugs() > 0 {
                break;
            }
            // A miss carries its learned trap state into the retry, the
            // same way the real pipeline chains runs (§3.4.6).
            if let Some(exported) = rt.export_trap_file() {
                carried.merge(&exported);
            }
            assert!(runs < 10, "seed {seed}: no violation after 10 runs");
        }
        total_runs += runs;
    }
    let mean = f64::from(total_runs) / SEEDS as f64;
    assert!(
        mean <= 1.01,
        "statically seeded runs-to-first-violation regressed: mean {mean} > 1.01 \
         over {SEEDS} seeds"
    );
}

#[test]
fn dynamic_detector_needs_the_second_run_the_priors_remove() {
    // Run 1, unseeded: the near miss arms the pair but nothing traps.
    // Arming needs both tasks inside the near-miss window, so under a
    // loaded parallel test run the scheduler can push them apart; retry
    // with a fresh runtime like detection_e2e's `eventually` loops do.
    let mut armed = None;
    for attempt in 0..10 {
        let rt1 = Runtime::tsvd(config(100 + 100 * attempt));
        run_workload_once(&rt1);
        assert_eq!(rt1.reports().unique_bugs(), 0);
        let carried = rt1
            .export_trap_file()
            .expect("run 1 must export its trap set");
        if !carried.to_pairs().is_empty() {
            armed = Some(carried);
            break;
        }
    }
    let carried = armed.expect("the near miss must have armed the pair for run 2");

    // Run 2, seeded with run 1's dynamically learned trap file: caught.
    let mut caught = false;
    for attempt in 0..10 {
        let rt2 = Runtime::tsvd(config(101 + attempt));
        rt2.import_trap_file(&carried);
        run_workload_once(&rt2);
        if rt2.reports().unique_bugs() > 0 {
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "the dynamically seeded second run must catch the pair"
    );
}

#[test]
fn run_options_static_priors_reach_module_runtimes() {
    use tsvd::harness::runner::{run_module_once, DetectorKind, RunOptions};
    use tsvd::workloads::module::{Expectation, Module};

    let priors = static_priors();
    let mut options = RunOptions::with_static_priors(priors.clone());
    options.config = config(7);
    let module = Module::new("idle", 1, Expectation::Clean, false, "List", |_| {});
    let run = run_module_once(&module, DetectorKind::Tsvd, &options, None);
    // The exported set re-tags origins as dynamic (it is the run's learned
    // state), so membership — not origin — is what must survive.
    let exported = run
        .runtime
        .export_trap_file()
        .expect("tsvd strategy keeps a trap set");
    for (a, b) in &priors.pairs {
        assert!(
            exported
                .pairs
                .iter()
                .any(|(x, y)| (x == a && y == b) || (x == b && y == a)),
            "prior pair ({a}, {b}) must land in the module's trap set, got {:?}",
            exported.pairs
        );
    }
}
